"""Participant selection and incentives — the paper's stated future work.

"In the future, we plan to integrate incentive mechanisms and
location-based participant selection into SnapTask to further improve the
efficiency in data collection" (Sec. VII). The related work it builds on
selects participants "based on their current positions, in order to
minimize incentive budgets while improving the QoI" (Zhang et al., Song
et al.) — and notes that SnapTask composes with these mechanisms because
"the participant selection mechanisms can be applied after task locations
are calculated" (Sec. VI).

This module implements that composition point: the backend calculates the
task location (Algorithm 1/4 as usual), then a :class:`SelectionPolicy`
decides *which* participant performs it, and an :class:`IncentiveLedger`
prices the work. Three policies are provided:

* ``RoundRobinPolicy`` — the baseline the paper's field test used
  ("currently we generate 1 task at a time per participant");
* ``NearestIdlePolicy`` — location-based selection: the idle participant
  closest to the task location;
* ``BudgetGreedyPolicy`` — incentive-aware selection: minimise expected
  payment (base reward + per-metre travel compensation scaled by each
  participant's rate), skipping participants whose payment would exceed
  the remaining budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..geometry import Vec2
from ..simkit.rng import RngStream
from .participants import Participant


@dataclass
class ParticipantState:
    """A participant's whereabouts and price as seen by the selector."""

    participant: Participant
    position: Vec2
    rate_per_meter: float
    busy: bool = False
    tasks_done: int = 0
    distance_walked_m: float = 0.0

    @property
    def name(self) -> str:
        return self.participant.name


@dataclass(frozen=True)
class Payment:
    """One incentive payout."""

    participant: str
    task_id: int
    base_reward: float
    travel_compensation: float

    @property
    def total(self) -> float:
        return self.base_reward + self.travel_compensation


class IncentiveLedger:
    """Tracks incentive payments against a campaign budget."""

    def __init__(self, base_reward: float = 1.0, budget: Optional[float] = None):
        if base_reward < 0:
            raise SimulationError("base reward cannot be negative")
        self._base_reward = base_reward
        self._budget = budget
        self._payments: List[Payment] = []

    @property
    def base_reward(self) -> float:
        return self._base_reward

    @property
    def payments(self) -> List[Payment]:
        return list(self._payments)

    def total_paid(self) -> float:
        return sum(p.total for p in self._payments)

    def remaining_budget(self) -> Optional[float]:
        if self._budget is None:
            return None
        return self._budget - self.total_paid()

    def quote(self, state: ParticipantState, task_location: Vec2) -> float:
        """Expected payment for sending ``state`` to ``task_location``."""
        distance = state.position.distance_to(task_location)
        return self._base_reward + state.rate_per_meter * distance

    def affordable(self, state: ParticipantState, task_location: Vec2) -> bool:
        remaining = self.remaining_budget()
        return remaining is None or self.quote(state, task_location) <= remaining

    def pay(self, state: ParticipantState, task_id: int, distance_m: float) -> Payment:
        payment = Payment(
            participant=state.name,
            task_id=task_id,
            base_reward=self._base_reward,
            travel_compensation=state.rate_per_meter * distance_m,
        )
        remaining = self.remaining_budget()
        if remaining is not None and payment.total > remaining + 1e-9:
            raise SimulationError(
                f"payment {payment.total:.2f} exceeds remaining budget {remaining:.2f}"
            )
        self._payments.append(payment)
        return payment


class SelectionPolicy:
    """Chooses a participant for a task location."""

    name = "abstract"

    def select(
        self,
        states: Sequence[ParticipantState],
        task_location: Vec2,
        ledger: IncentiveLedger,
    ) -> Optional[ParticipantState]:
        raise NotImplementedError


class RoundRobinPolicy(SelectionPolicy):
    """Cycle through participants regardless of position (the baseline)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, states, task_location, ledger):
        idle = [s for s in states if not s.busy]
        if not idle:
            return None
        choice = idle[self._cursor % len(idle)]
        self._cursor += 1
        return choice if ledger.affordable(choice, task_location) else None


class NearestIdlePolicy(SelectionPolicy):
    """Location-based selection: the closest idle participant."""

    name = "nearest-idle"

    def select(self, states, task_location, ledger):
        idle = [
            s
            for s in states
            if not s.busy and ledger.affordable(s, task_location)
        ]
        if not idle:
            return None
        return min(idle, key=lambda s: s.position.distance_to(task_location))


class BudgetGreedyPolicy(SelectionPolicy):
    """Incentive-aware selection: minimise the expected payment."""

    name = "budget-greedy"

    def select(self, states, task_location, ledger):
        idle = [
            s
            for s in states
            if not s.busy and ledger.affordable(s, task_location)
        ]
        if not idle:
            return None
        return min(idle, key=lambda s: ledger.quote(s, task_location))


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of one selection-driven campaign."""

    policy: str
    assignments: int
    unassigned: int
    total_distance_m: float
    total_paid: float
    per_participant_tasks: Dict[str, int]

    @property
    def mean_distance_m(self) -> float:
        return self.total_distance_m / self.assignments if self.assignments else 0.0


class ParticipantSelector:
    """Drives a selection policy over a stream of task locations."""

    def __init__(
        self,
        participants: Sequence[Participant],
        start_positions: Sequence[Vec2],
        policy: SelectionPolicy,
        ledger: IncentiveLedger,
        rng: Optional[RngStream] = None,
        rate_range: Tuple[float, float] = (0.05, 0.25),
    ):
        if len(participants) != len(start_positions):
            raise SimulationError("participants and start positions must align")
        if not participants:
            raise SimulationError("selector needs at least one participant")
        self._policy = policy
        self._ledger = ledger
        self._states: List[ParticipantState] = []
        for i, (participant, position) in enumerate(zip(participants, start_positions)):
            rate = (
                rng.child(f"rate-{i}").uniform(*rate_range)
                if rng is not None
                else (rate_range[0] + rate_range[1]) / 2.0
            )
            self._states.append(
                ParticipantState(
                    participant=participant, position=position, rate_per_meter=rate
                )
            )
        self._unassigned = 0

    @property
    def states(self) -> List[ParticipantState]:
        return list(self._states)

    @property
    def ledger(self) -> IncentiveLedger:
        return self._ledger

    def assign(self, task_id: int, task_location: Vec2) -> Optional[ParticipantState]:
        """Select, pay and move a participant to the task location.

        Returns None when no affordable idle participant exists; the
        caller may retry later (participants become idle on `release`).
        """
        choice = self._policy.select(self._states, task_location, self._ledger)
        if choice is None:
            self._unassigned += 1
            return None
        distance = choice.position.distance_to(task_location)
        self._ledger.pay(choice, task_id, distance)
        choice.busy = True
        choice.tasks_done += 1
        choice.distance_walked_m += distance
        choice.position = task_location
        return choice

    def release(self, state: ParticipantState) -> None:
        state.busy = False

    def report(self) -> SelectionReport:
        return SelectionReport(
            policy=self._policy.name,
            assignments=sum(s.tasks_done for s in self._states),
            unassigned=self._unassigned,
            total_distance_m=sum(s.distance_walked_m for s in self._states),
            total_paid=self._ledger.total_paid(),
            per_participant_tasks={s.name: s.tasks_done for s in self._states},
        )


def replay_task_locations(
    locations: Sequence[Vec2],
    participants: Sequence[Participant],
    start_positions: Sequence[Vec2],
    policy: SelectionPolicy,
    base_reward: float = 1.0,
    budget: Optional[float] = None,
    rng: Optional[RngStream] = None,
) -> SelectionReport:
    """Replay a campaign's task-location stream under a policy.

    Tasks are sequential (one active task at a time, matching the paper's
    "1 task at a time per participant"), so each assignment is released
    before the next — the policies differ purely in travel and price.
    """
    ledger = IncentiveLedger(base_reward=base_reward, budget=budget)
    selector = ParticipantSelector(
        participants, start_positions, policy, ledger, rng=rng
    )
    for task_id, location in enumerate(locations, start=1):
        state = selector.assign(task_id, location)
        if state is not None:
            selector.release(state)
    return selector.report()
