"""The backend server: SnapTask's cloud side over the simulated network.

Wraps a :class:`SnapTaskPipeline` behind the message protocol: it hands
out tasks from its queue, processes uploaded photo batches with
Algorithm 1 as they arrive, stores map snapshots, and answers
localization queries against the current model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..annotation.processor import AnnotationProcessor
from ..core.pipeline import BatchOutcome, SnapTaskPipeline
from ..core.tasks import Task, TaskKind
from ..errors import ProtocolError
from ..nav.localization import ImageLocalizer, PositionFix
from ..simkit.events import Simulator
from .messages import PhotoBatch, ProcessingResult, TaskAssignment, TaskRequest
from .storage import BackendStore

#: Simulated server-side processing time per uploaded photo (SfM is the
#: paper's acknowledged bottleneck, Sec. II-A).
PROCESSING_S_PER_PHOTO = 0.35


class BackendServer:
    """Single-venue SnapTask backend."""

    def __init__(
        self,
        pipeline: SnapTaskPipeline,
        simulator: Simulator,
        venue_id: str,
        localizer: Optional[ImageLocalizer] = None,
        annotation_processor: Optional[AnnotationProcessor] = None,
    ):
        self._pipeline = pipeline
        self._sim = simulator
        self._store = BackendStore(venue_id)
        self._localizer = localizer
        self._annotation = annotation_processor
        self._task_queue: List[Task] = []
        self._result_log: List[ProcessingResult] = []

    @property
    def store(self) -> BackendStore:
        return self._store

    @property
    def pipeline(self) -> SnapTaskPipeline:
        return self._pipeline

    @property
    def results(self) -> List[ProcessingResult]:
        return list(self._result_log)

    # -- protocol handlers ---------------------------------------------------------

    def handle_task_request(self, request: TaskRequest) -> TaskAssignment:
        """Assign the next pending task, or report completion."""
        if self._pipeline.venue_covered:
            return TaskAssignment(client_id=request.client_id, task=None, venue_covered=True)
        while self._task_queue:
            task = self._task_queue.pop(0)
            self._store.record_task(task)
            assigned = self._store.assign_task(task.task_id, request.client_id)
            return TaskAssignment(client_id=request.client_id, task=assigned)
        return TaskAssignment(client_id=request.client_id, task=None, venue_covered=False)

    def handle_photo_batch(
        self,
        batch: PhotoBatch,
        on_done: Optional[Callable[[ProcessingResult], None]] = None,
    ) -> None:
        """Queue SfM processing of an uploaded batch (simulated latency).

        ``on_done`` fires when processing completes, carrying the result
        the server would push back to the client.
        """
        if not batch.photos:
            raise ProtocolError("empty photo batch upload")
        delay = PROCESSING_S_PER_PHOTO * len(batch.photos)
        self._sim.schedule(
            delay,
            lambda: self._process(batch, on_done),
            label=f"process-batch:{batch.client_id}",
        )

    def handle_localization_query(self, photo) -> Optional[PositionFix]:
        """Image-based positioning against the current model."""
        if self._localizer is None:
            raise ProtocolError("backend has no localizer configured")
        model_ids = {int(f) for f in self._pipeline.model().cloud.feature_ids}
        return self._localizer.locate(photo, model_ids)

    # -- internals --------------------------------------------------------------------

    def _process(
        self,
        batch: PhotoBatch,
        on_done: Optional[Callable[[ProcessingResult], None]],
    ) -> None:
        task = self._store.task(batch.task_id) if batch.task_id is not None else None
        photos = list(batch.photos)
        if (
            task is not None
            and task.kind == TaskKind.ANNOTATION
            and self._annotation is not None
        ):
            # The online annotation tool runs server-side (Sec. III):
            # label the uploaded frames, fuse with Algorithm 5, imprint
            # with Algorithm 6, then reconstruct.
            annotated, context = AnnotationProcessor.split_batch(photos)
            if annotated:
                processed = self._annotation.process(annotated)
                self._pipeline.register_artificial_features(
                    processed.imprint.all_feature_ids(),
                    processed.imprint.all_feature_positions(),
                )
                photos = list(processed.imprint.photos) + context
                self._store.bump("annotations_collected", processed.n_annotations)
                self._store.bump("surfaces_identified", len(processed.objects))
        outcome = self._pipeline.process_batch(photos, task)
        self._store.save_maps(outcome.iteration, outcome.coverage_cells, outcome.maps)
        self._store.bump("photos_processed", len(batch.photos))
        if batch.task_id is not None:
            self._store.complete_task(batch.task_id)
        for new_task in outcome.new_tasks:
            self._task_queue.append(new_task)
        result = ProcessingResult(
            client_id=batch.client_id,
            task_id=batch.task_id,
            photos_added=outcome.photos_added,
            coverage_cells=outcome.coverage_cells,
            venue_covered=outcome.venue_covered,
        )
        self._result_log.append(result)
        if on_done is not None:
            on_done(result)
