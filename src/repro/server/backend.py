"""The backend server: SnapTask's cloud side over the simulated network.

Wraps a :class:`SnapTaskPipeline` behind the message protocol: it hands
out tasks from its queue, processes uploaded photo batches with
Algorithm 1 as they arrive, stores map snapshots, and answers
localization queries against the current model.

Fault tolerance (this layer's contract with unreliable clients):

* **Task leases** — every assignment expires after
  ``ProtocolConfig.lease_duration_s`` of simulated time. The reaper
  requeues expired tasks, so a participant who wanders off mid-task
  (Sec. III runs on real volunteers) costs latency, never coverage. In a
  discrete-event simulation the periodic reaper degenerates to one exact
  event per lease expiry, cancelled early when the upload lands;
  :meth:`reap_expired` additionally offers the classic sweep form.
* **Idempotent exchanges** — task requests and photo batches carry ids;
  duplicated or retransmitted messages are answered from dedup ledgers
  instead of double-assigning tasks or double-processing batches.
* **Failure replies, not crashes** — a malformed remote upload yields a
  failure :class:`ProcessingResult`; only successful batches complete
  their task, failed attempts release the lease (feeding the paper's
  TT-attempt annotation escalation, Sec. IV).
* **Bounded SfM lane** — processing capacity is explicit: a
  :class:`~repro.config.BackendConfig` worker pool serves batches FIFO
  from an admission queue (completion = queue wait + deterministic
  service time). A bounded queue sheds overflow with a ``retry_after_s``
  hint instead of queueing without limit; ``sfm_workers=None`` keeps the
  legacy infinite-server model byte-for-byte.
* **Bounded ledgers** — dedup entries are evicted a retention window
  after their owning task turns terminal; evicted batch outcomes are
  archived in the store so late duplicates still re-ACK safely (the
  archive itself is GC'd ``archive_retention_s`` after eviction).
* **Durability hooks** — when a :mod:`repro.persist` log is attached,
  every state-mutating handler outcome is appended to the WAL at its
  commit point, and :meth:`replay_record` re-applies records during
  recovery with a pinned replay clock (``_now``). A crashed server is
  *fenced*: its still-scheduled events become no-ops so they cannot act
  on (or ghost-ACK against) post-recovery state.
"""

from __future__ import annotations

import bisect
import pickle
from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..annotation.processor import AnnotationProcessor
from ..config import BackendConfig, ProtocolConfig
from ..core.pipeline import SnapTaskPipeline
from ..core.tasks import Task, TaskKind, TaskStatus
from ..errors import BackendUnavailableError, PersistenceError, ProtocolError
from ..geometry import Vec2
from ..nav.localization import ImageLocalizer, PositionFix
from ..persist.records import (
    AdmitRecord,
    BatchRecord,
    EmptyBatchRecord,
    GrantRecord,
    LocateRecord,
    ReapRecord,
)
from ..simkit.events import EventToken, Simulator
from .messages import PhotoBatch, ProcessingResult, TaskAssignment, TaskRequest
from .storage import BackendStore

#: Simulated server-side processing time per uploaded photo (SfM is the
#: paper's acknowledged bottleneck, Sec. II-A).
PROCESSING_S_PER_PHOTO = 0.35

#: Backend state captured by durability snapshots (deep-copied as one
#: graph so shared objects — e.g. Task instances living in both the
#: dispatch queue and the store — stay shared in the copy). Live lane
#: scheduling (``_sfm_queue``/``_busy_until``), reap timers and open
#: spans are deliberately absent: in-flight work dies with the crash and
#: timers are re-armed from store leases on recovery.
PERSISTED_FIELDS = (
    "_pipeline",
    "_store",
    "_localizer",
    "_annotation",
    "_protocol",
    "_backend",
    "_task_queue",
    "_result_log",
    "_request_ledger",
    "_batch_ledger",
    "_inflight_batches",
    "_admit_watermark",
    "_service_order",
    "_queue_wait_total",
    "_peak_queue_depth",
    "_service_time_total",
    "_gc_queue",
    "_rids_by_task",
    "_bids_by_task",
)


class BackendServer:
    """Single-venue SnapTask backend."""

    def __init__(
        self,
        pipeline: SnapTaskPipeline,
        simulator: Simulator,
        venue_id: str,
        localizer: Optional[ImageLocalizer] = None,
        annotation_processor: Optional[AnnotationProcessor] = None,
        protocol: Optional[ProtocolConfig] = None,
        backend: Optional[BackendConfig] = None,
    ):
        self._pipeline = pipeline
        self._sim = simulator
        self._store = BackendStore(venue_id)
        self._localizer = localizer
        self._annotation = annotation_processor
        self._protocol = protocol if protocol is not None else ProtocolConfig()
        self._backend = backend if backend is not None else BackendConfig()
        self._backend.validate()
        self._task_queue: Deque[Task] = deque()
        self._result_log: List[ProcessingResult] = []
        #: request_id -> assignment already granted (idempotent requests).
        self._request_ledger: Dict[str, TaskAssignment] = {}
        #: batch_id -> result (None while the batch is still processing).
        self._batch_ledger: Dict[str, Optional[ProcessingResult]] = {}
        #: task_id -> pending lease-expiry event.
        self._lease_reaps: Dict[int, EventToken] = {}
        #: task_id -> number of uploaded batches currently in simulated
        #: SfM processing. A lease whose task has an in-flight batch is
        #: *not* reaped: the photos arrived inside the lease window, so
        #: the upload outcome (complete / fail), not the reaper, resolves
        #: the assignment. This also pins the expiry==completion tie —
        #: the reap event dispatches first (FIFO at equal timestamps) but
        #: defers to the in-flight upload deterministically.
        self._inflight_batches: Dict[int, int] = {}
        # -- SfM processing lane (bounded worker pool + admission queue) --
        #: Parallel workers; ``None`` keeps the infinite-server model.
        self._workers = self._backend.sfm_workers
        self._queue_limit = self._backend.queue_limit
        #: Admitted batches waiting for a worker, FIFO.
        self._sfm_queue: Deque[tuple] = deque()
        #: Service-completion times of the currently busy workers.
        self._busy_until: List[float] = []
        #: Highest admission seq ever issued (next admit gets +1). A plain
        #: int so snapshots capture it and recovery resumes *strictly
        #: above* every seq a pre-crash batch may have carried — the FIFO
        #: service-order audit must keep seeing increasing seqs.
        self._admit_watermark = 0
        #: Admission sequence numbers in service-start order (FIFO audit).
        self._service_order: List[int] = []
        self._queue_wait_total = 0.0
        self._peak_queue_depth = 0
        self._service_time_total = 0.0
        # -- ledger garbage collection (bounded dedup memory) --
        #: (evict_at, request_ids, batch_ids), evict_at non-decreasing.
        self._gc_queue: Deque[Tuple[float, tuple, tuple]] = deque()
        self._rids_by_task: Dict[int, List[str]] = {}
        self._bids_by_task: Dict[int, List[str]] = {}
        # -- durability (repro.persist; all dormant when detached) --
        #: Attached persistence log (WAL + snapshotter), or None.
        self._persist = None
        #: Pinned replay clock during recovery (None = live sim time).
        self._replay_now: Optional[float] = None
        #: True once this instance crashed: every still-scheduled event
        #: belonging to it must become a no-op (a recovered twin owns the
        #: state now).
        self._fenced = False
        # Telemetry (shared with everything on this event loop).
        obs = simulator.telemetry
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_requests = metrics.counter("repro.server.task_requests")
        self._m_requests_deduped = metrics.counter("repro.server.requests_deduped")
        self._m_batches = metrics.counter("repro.server.photo_batches")
        self._m_batches_deduped = metrics.counter("repro.server.batches_deduped")
        self._m_empty_rejected = metrics.counter("repro.server.empty_batches_rejected")
        self._m_leases_granted = metrics.counter("repro.server.leases_granted")
        self._m_leases_expired = metrics.counter("repro.server.leases_expired")
        self._m_tasks_requeued = metrics.counter("repro.server.tasks_requeued")
        self._h_process = metrics.histogram(
            "repro.server.process_batch_s", base=0.1, growth=2.0
        )
        self._g_queue = metrics.gauge("repro.server.task_queue_depth")
        self._m_shed = metrics.counter("repro.server.batches_shed")
        self._h_queue_wait = metrics.histogram(
            "repro.server.sfm_queue_wait_s", base=0.1, growth=2.0
        )
        self._h_service = metrics.histogram(
            "repro.server.sfm_service_s", base=0.1, growth=2.0
        )
        self._g_sfm_queue = metrics.gauge("repro.server.sfm_queue_depth")
        self._g_sfm_busy = metrics.gauge("repro.server.sfm_busy_workers")
        self._g_archive = metrics.gauge("repro.server.batch_archive_entries")
        #: task_id -> open lease span (request -> upload ACK / expiry).
        self._lease_spans: Dict[int, object] = {}

    def _now(self) -> float:
        """Handler-visible time: live sim time, or the pinned replay time.

        WAL replay re-invokes the real handlers after a restart, when the
        simulator clock has already advanced past the recorded commit
        times; pinning the clock makes replayed mutations (lease expiry
        times, GC deadlines) identical to the live run's.
        """
        return self._replay_now if self._replay_now is not None else self._sim.now

    # -- durability hooks (repro.persist) --------------------------------------------

    @property
    def persistence(self):
        """The attached persistence log, or None."""
        return self._persist

    def attach_persistence(self, log) -> None:
        """Attach a :class:`repro.persist.host.PersistenceLog` (WAL hook)."""
        self._persist = log

    def export_state(self) -> Dict[str, object]:
        """Live references to every persisted field (see PERSISTED_FIELDS).

        The caller (the snapshotter) deep-copies the returned dict as one
        graph; nothing here copies.
        """
        return {name: getattr(self, name) for name in PERSISTED_FIELDS}

    def install_state(self, state: Dict[str, object]) -> None:
        """Adopt a recovered state graph (recovery glue; no copying)."""
        missing = set(PERSISTED_FIELDS) - set(state)
        if missing:
            raise PersistenceError(f"snapshot missing fields: {sorted(missing)}")
        for name in PERSISTED_FIELDS:
            setattr(self, name, state[name])

    def fence(self) -> None:
        """Mark this (crashed) instance dead to the simulation.

        Its already-scheduled events — service completions, lease reaps —
        still sit in the event heap; fencing turns them into no-ops so a
        stale twin can neither mutate recovered state (it holds the old
        object graph) nor append to the shared WAL / ghost-ACK clients.
        Open lease spans are closed as ``crashed`` and reap timers
        cancelled (satellite: cancelled-but-pending timers must not fire
        against post-recovery state).
        """
        self._fenced = True
        self._persist = None
        for token in self._lease_reaps.values():
            if not token.executed:
                token.cancel()
        self._lease_reaps.clear()
        for task_id in list(self._lease_spans):
            self._end_lease_span(task_id, "crashed")

    @property
    def fenced(self) -> bool:
        return self._fenced

    def arm_recovered_leases(self) -> int:
        """Re-arm one reap timer per live lease after recovery.

        A lease that expired during the outage fires immediately
        (``max(expires_at, now)``) — the grace the client lost to the
        crash is not extended, but time cannot run backwards either.
        """
        armed = 0
        for lease in self._store.active_leases():
            self._schedule_lease_reap(
                lease.task_id, max(lease.expires_at, self._sim.now)
            )
            armed += 1
        return armed

    def replay_record(self, record) -> None:
        """Re-apply one WAL record during recovery.

        Must run with persistence detached (no re-logging) on a freshly
        restored server; mutations go through the *real* handlers with
        the replay clock pinned to the record's commit time, so replayed
        state is handler-for-handler what the live run produced.
        """
        if self._persist is not None:
            raise PersistenceError("replay with persistence attached would re-log")
        if isinstance(record, GrantRecord):
            self._replay_now = record.t
            position = (
                Vec2(record.position_x, record.position_y)
                if record.position_x is not None and record.position_y is not None
                else None
            )
            self.handle_task_request(
                TaskRequest(
                    client_id=record.client_id,
                    position=position,
                    request_id=record.request_id,
                )
            )
        elif isinstance(record, AdmitRecord):
            # Admission bookkeeping only — the photos (if they committed)
            # arrive with the matching BatchRecord; if they did not, the
            # remnants are dropped after replay.
            self._replay_now = record.t
            self._gc_ledgers()
            if record.batch_id is not None:
                self._batch_ledger[record.batch_id] = None
            if record.task_id is not None:
                self._inflight_batches[record.task_id] = (
                    self._inflight_batches.get(record.task_id, 0) + 1
                )
            if record.seq is not None and record.seq > self._admit_watermark:
                self._admit_watermark = record.seq
        elif isinstance(record, BatchRecord):
            self._replay_now = record.done_t
            photos = pickle.loads(record.photos_blob)
            if record.seq is not None:
                # The bounded lane's service accounting happened at
                # service start; re-apply it from the record before the
                # commit itself — unless the snapshot already captured
                # it (service started before the checkpoint, commit
                # landed after), in which case re-applying would
                # duplicate the seq in the start-order audit log and
                # double-count the wait/service totals. Seqs strictly
                # increase with service-start order while commits can
                # land out of start order with >1 worker, so a sorted
                # insert reconstructs the true start order.
                pos = bisect.bisect_left(self._service_order, record.seq)
                already_started = (
                    pos < len(self._service_order)
                    and self._service_order[pos] == record.seq
                )
                if not already_started:
                    self._service_order.insert(pos, record.seq)
                    self._queue_wait_total += record.wait_s
                    self._h_queue_wait.record(record.wait_s)
                    self._service_time_total += record.service_s
                    self._h_service.record(record.service_s)
            self._process(
                PhotoBatch(
                    client_id=record.client_id,
                    task_id=record.task_id,
                    photos=tuple(photos),
                    batch_id=record.batch_id,
                ),
                None,
                arrived_at=record.arrived_t,
            )
        elif isinstance(record, EmptyBatchRecord):
            self._replay_now = record.t
            self.handle_photo_batch(
                PhotoBatch(
                    client_id=record.client_id,
                    task_id=record.task_id,
                    photos=(),
                    batch_id=record.batch_id,
                ),
                None,
            )
        elif isinstance(record, ReapRecord):
            self._replay_now = record.t
            self._reap_lease(record.task_id)
        elif isinstance(record, LocateRecord):
            self._replay_now = record.t
            if self._localizer is not None:
                self._localizer.restore_query_count(record.query_count)
        else:
            raise PersistenceError(f"unknown WAL record {type(record).__name__}")

    def end_replay(self) -> None:
        """Unpin the replay clock (handlers read live sim time again)."""
        self._replay_now = None

    def drop_inflight_remnants(self) -> int:
        """Forget batches admitted but never committed before the crash.

        Their photos died with the process; the clients' retransmission
        timers are still running and will re-upload them, at which point
        the fresh ledger entries admit them as new batches.
        """
        dropped = 0
        for bid, entry in list(self._batch_ledger.items()):
            if entry is None:
                del self._batch_ledger[bid]
                dropped += 1
        self._inflight_batches.clear()
        return dropped

    @property
    def store(self) -> BackendStore:
        return self._store

    @property
    def pipeline(self) -> SnapTaskPipeline:
        return self._pipeline

    @property
    def protocol(self) -> ProtocolConfig:
        return self._protocol

    @property
    def backend_config(self) -> BackendConfig:
        return self._backend

    @property
    def results(self) -> List[ProcessingResult]:
        return list(self._result_log)

    @property
    def queued_tasks(self) -> int:
        return len(self._task_queue)

    def enqueue_task(self, task: Task) -> None:
        """Put a task on the dispatch queue (deployment bootstrap glue)."""
        self._task_queue.append(task)

    # -- read-only ledger views (DST invariant checking) ---------------------------

    def ledger_batch_ids(self) -> List[str]:
        """Every batch id the dedup ledger has seen, in arrival order."""
        return list(self._batch_ledger)

    def ledger_entry(self, batch_id: str) -> Optional[ProcessingResult]:
        """The ledgered result for ``batch_id`` (``None`` while in flight)."""
        return self._batch_ledger.get(batch_id)

    def inflight_batch_count(self, task_id: int) -> int:
        """Uploaded batches of ``task_id`` currently in simulated processing."""
        return self._inflight_batches.get(task_id, 0)

    def ledger_contains(self, batch_id: str) -> bool:
        """Whether the dedup ledger still holds an entry for ``batch_id``."""
        return batch_id in self._batch_ledger

    @property
    def batch_ledger_size(self) -> int:
        return len(self._batch_ledger)

    @property
    def request_ledger_size(self) -> int:
        return len(self._request_ledger)

    # -- read-only SfM-lane views (DST invariants + benchmarks) ---------------------

    @property
    def sfm_worker_limit(self) -> Optional[int]:
        """Configured worker count (``None`` = infinite-server model)."""
        return self._workers

    @property
    def sfm_queue_limit(self) -> Optional[int]:
        return self._queue_limit

    @property
    def sfm_busy_workers(self) -> int:
        return len(self._busy_until)

    @property
    def sfm_queue_depth(self) -> int:
        return len(self._sfm_queue)

    @property
    def sfm_queue_wait_total_s(self) -> float:
        """Total time admitted batches spent waiting for a worker."""
        return self._queue_wait_total

    @property
    def sfm_peak_queue_depth(self) -> int:
        return self._peak_queue_depth

    @property
    def sfm_service_time_total_s(self) -> float:
        """Total service time delivered by the bounded pool."""
        return self._service_time_total

    def sfm_service_order(self) -> List[int]:
        """Admission sequence numbers in service-start order (FIFO audit)."""
        return list(self._service_order)

    # -- protocol handlers ---------------------------------------------------------

    def handle_task_request(self, request: TaskRequest) -> TaskAssignment:
        """Assign the next pending task, or report completion.

        Requests carrying a ``request_id`` are idempotent: a duplicate
        (network-level copy or client retransmission) is answered with
        the original assignment instead of leaking a second lease.
        """
        if self._fenced:
            raise BackendUnavailableError("backend crashed; request lost")
        if self._persist is not None:
            # Every arrival is logged (dedupes included): replay then
            # reproduces the request ledger, its GC queue and the dedupe
            # accounting exactly.
            self._persist.log_grant(request, self._now())
        self._gc_ledgers()
        self._m_requests.inc()
        rid = request.request_id
        if rid is not None and rid in self._request_ledger:
            self._store.bump("requests_deduped")
            self._m_requests_deduped.inc()
            return self._request_ledger[rid]
        with self._tracer.span(
            "server.task_request", category="server", client=request.client_id
        ) as span:
            assignment = self._next_assignment(request)
            span.set_attr("assigned", assignment.task is not None)
            if assignment.task is not None:
                span.set_attr("task_id", assignment.task.task_id)
        if rid is not None:
            self._request_ledger[rid] = assignment
            if assignment.task is not None:
                self._rids_by_task.setdefault(assignment.task.task_id, []).append(rid)
            else:
                # No task owns this exchange; retention alone bounds it.
                self._gc_queue.append(
                    (self._now() + self._protocol.ledger_retention_s, (rid,), ())
                )
        return assignment

    def _next_assignment(self, request: TaskRequest) -> TaskAssignment:
        if self._pipeline.venue_covered:
            return TaskAssignment(
                client_id=request.client_id,
                task=None,
                venue_covered=True,
                request_id=request.request_id,
            )
        task = self._pop_next_task()
        if task is None:
            return TaskAssignment(
                client_id=request.client_id,
                task=None,
                venue_covered=False,
                request_id=request.request_id,
                retry_after_s=self._poll_hint(),
            )
        self._store.record_task(task)
        expires_at = self._now() + self._protocol.lease_duration_s
        assigned = self._store.assign_task(
            task.task_id,
            request.client_id,
            granted_at=self._now(),
            expires_at=expires_at,
        )
        self._schedule_lease_reap(task.task_id, expires_at)
        self._m_leases_granted.inc()
        self._g_queue.set(len(self._task_queue))
        if self._tracer.enabled:
            # Open span surviving every event hop until the upload ACK
            # (or the reaper) closes it — the task's whole server life.
            self._lease_spans[task.task_id] = self._tracer.begin(
                "server.task_lease",
                category="server",
                task_id=task.task_id,
                client=request.client_id,
                expires_at=expires_at,
            )
        return TaskAssignment(
            client_id=request.client_id,
            task=assigned,
            request_id=request.request_id,
            lease_expires_at=expires_at,
            processing_s_per_photo=PROCESSING_S_PER_PHOTO,
        )

    def _pop_next_task(self) -> Optional[Task]:
        """Explicitly pop the next *dispatchable* task (O(1) deque pop).

        Skips queue entries that were finished or re-leased through
        another path while they waited (e.g. a late upload completed a
        requeued task): their recorded status is no longer PENDING.
        """
        while self._task_queue:
            task = self._task_queue.popleft()
            recorded = self._store.maybe_task(task.task_id)
            if recorded is not None and recorded.status != TaskStatus.PENDING:
                self._store.bump("stale_queue_entries_skipped")
                continue
            return recorded if recorded is not None else task
        return None

    def handle_photo_batch(
        self,
        batch: PhotoBatch,
        on_done: Optional[Callable[[ProcessingResult], None]] = None,
    ) -> None:
        """Queue SfM processing of an uploaded batch (simulated latency).

        ``on_done`` fires when processing completes, carrying the result
        the server would push back to the client. Batches carrying a
        ``batch_id`` are idempotent: duplicates of an in-flight batch are
        dropped, duplicates of a finished batch are re-ACKed from the
        ledger (or, after ledger eviction, from the store archive) — the
        pipeline never processes the same batch twice.

        With a bounded :class:`~repro.config.BackendConfig` pool the
        batch is admitted to the FIFO processing lane; when every worker
        is busy and the admission queue is at its bound, the batch is
        *shed* with a backpressure reply instead (``retry_after_s`` set,
        nothing ledgered — the client retransmits later).
        """
        if self._fenced:
            raise BackendUnavailableError("backend crashed; upload lost")
        self._gc_ledgers()
        self._m_batches.inc()
        bid = batch.batch_id
        if bid is not None:
            if bid in self._batch_ledger:
                self._store.bump("batches_deduped")
                self._m_batches_deduped.inc()
                prior = self._batch_ledger[bid]
                if prior is not None and on_done is not None:
                    on_done(prior)  # replay the lost/raced ACK
                return
            archived = self._store.archived_batch(bid)
            if archived is not None:
                # The ledger entry was already evicted; answer the late
                # duplicate from the archive instead of reprocessing.
                self._store.bump("batches_deduped")
                self._store.bump("late_duplicates_reacked")
                self._m_batches_deduped.inc()
                if on_done is not None:
                    on_done(
                        ProcessingResult(
                            client_id=batch.client_id,
                            task_id=archived.task_id,
                            photos_added=archived.photos_added,
                            coverage_cells=self._pipeline.coverage_cells,
                            venue_covered=self._pipeline.venue_covered,
                            batch_id=bid,
                            error=archived.error,
                        )
                    )
                return
        if not batch.photos:
            # A remote client's malformed upload must not crash the event
            # loop: reply with a failure result and requeue the task.
            # Commit point: the whole path is synchronous, so logging the
            # arrival is logging the outcome (replay re-runs this path).
            if self._persist is not None:
                self._persist.log_empty_batch(batch, self._now())
            if bid is not None:
                self._batch_ledger[bid] = None
            self._store.bump("empty_batches_rejected")
            self._m_empty_rejected.inc()
            result = ProcessingResult(
                client_id=batch.client_id,
                task_id=batch.task_id,
                photos_added=False,
                coverage_cells=self._pipeline.coverage_cells,
                venue_covered=self._pipeline.venue_covered,
                batch_id=bid,
                error="empty photo batch upload",
            )
            if bid is not None:
                self._batch_ledger[bid] = result
                self._note_ledgered(bid, batch.task_id)
            if batch.task_id is not None:
                self._requeue_task(batch.task_id)
            self._result_log.append(result)
            if on_done is not None:
                on_done(result)
            return
        if self._overloaded():
            self._shed(batch, on_done)
            return
        if bid is not None:
            self._batch_ledger[bid] = None
        arrived_at = self._now()
        if batch.task_id is not None:
            self._inflight_batches[batch.task_id] = (
                self._inflight_batches.get(batch.task_id, 0) + 1
            )
        seq = self._admit(batch, on_done, arrived_at)
        if self._persist is not None:
            # Admission is durable bookkeeping even though the *photos*
            # are not yet: replay restores the in-flight marks so a later
            # logged lease-reap defers exactly as it did live, and the
            # seq watermark so post-recovery admissions stay FIFO-ordered
            # above every pre-crash seq.
            self._persist.log_admit(batch, seq, arrived_at)

    def handle_localization_query(self, photo) -> Optional[PositionFix]:
        """Image-based positioning against the current model."""
        if self._fenced:
            raise BackendUnavailableError("backend crashed; query lost")
        if self._localizer is None:
            raise ProtocolError("backend has no localizer configured")
        model_ids = {int(f) for f in self._pipeline.model().cloud.feature_ids}
        fix = self._localizer.locate(photo, model_ids)
        if self._persist is not None:
            # The localizer's error draws are keyed by absolute query
            # count (its stream never advances), so the count *is* its
            # durable state.
            self._persist.log_locate(self._localizer.query_count, self._now())
        return fix

    # -- SfM processing lane -----------------------------------------------------------

    def _admit(self, batch: PhotoBatch, on_done, arrived_at: float) -> Optional[int]:
        """Hand an accepted batch to the processing lane.

        Returns the admission seq under a bounded pool (``None`` under
        the infinite-server model) — the WAL records it.
        """
        if self._workers is None:
            # Legacy infinite-server model: every batch gets a dedicated
            # simulated worker (byte-for-byte the pre-queueing trace).
            delay = PROCESSING_S_PER_PHOTO * len(batch.photos)
            self._sim.schedule(
                delay,
                lambda: self._process(batch, on_done, arrived_at),
                label=f"process-batch:{batch.client_id}",
            )
            return None
        self._admit_watermark += 1
        seq = self._admit_watermark
        entry = (seq, batch, on_done, arrived_at)
        if len(self._busy_until) < self._workers:
            self._start_service(entry)
        else:
            self._sfm_queue.append(entry)
            depth = len(self._sfm_queue)
            self._peak_queue_depth = max(self._peak_queue_depth, depth)
            self._g_sfm_queue.set(depth)
        return seq

    def _start_service(self, entry: tuple) -> None:
        seq, batch, on_done, arrived_at = entry
        now = self._sim.now
        wait = now - arrived_at
        self._service_order.append(seq)
        self._queue_wait_total += wait
        self._h_queue_wait.record(wait)
        if wait > 0 and self._tracer.enabled:
            self._tracer.record(
                "server.sfm_queue_wait",
                arrived_at,
                now,
                category="server",
                client=batch.client_id,
                batch_id=batch.batch_id,
            )
        service_s = PROCESSING_S_PER_PHOTO * len(batch.photos)
        self._h_service.record(service_s)
        self._service_time_total += service_s
        end = now + service_s
        self._busy_until.append(end)
        self._g_sfm_busy.set(len(self._busy_until))
        self._sim.schedule(
            service_s,
            lambda: self._finish_service(entry, end, wait, service_s),
            label=f"process-batch:{batch.client_id}",
        )

    def _finish_service(
        self, entry: tuple, end: float, wait: float = 0.0, service_s: float = 0.0
    ) -> None:
        if self._fenced:
            return  # stale completion from before a crash
        seq, batch, on_done, arrived_at = entry
        self._busy_until.remove(end)
        self._g_sfm_busy.set(len(self._busy_until))
        self._process(batch, on_done, arrived_at, lane=(seq, wait, service_s))
        if self._sfm_queue and len(self._busy_until) < self._workers:
            head = self._sfm_queue.popleft()
            self._g_sfm_queue.set(len(self._sfm_queue))
            self._start_service(head)

    def _overloaded(self) -> bool:
        """Admission control: full pool *and* full queue means shed."""
        if self._workers is None or self._queue_limit is None:
            return False
        if len(self._busy_until) < self._workers:
            return False
        return len(self._sfm_queue) >= self._queue_limit

    def _retry_after(self) -> float:
        """When retrying is worthwhile: the earliest service completion."""
        earliest = min(self._busy_until) if self._busy_until else self._sim.now
        return max(self._backend.retry_after_floor_s, earliest - self._sim.now)

    def _poll_hint(self) -> Optional[float]:
        """Re-poll hint for empty assignments while the lane is saturated."""
        if self._workers is None or len(self._busy_until) < self._workers:
            return None
        return self._retry_after()

    def _shed(self, batch: PhotoBatch, on_done) -> None:
        """Refuse an upload under overload with a backpressure reply.

        Deliberately *not* ledgered and *not* logged: a shed is no
        verdict on the batch, so its id must stay fresh for the eventual
        real processing (and the idempotency invariant must not see a
        second result for it).
        """
        self._store.bump("batches_shed")
        self._m_shed.inc()
        retry_after = self._retry_after()
        if self._tracer.enabled:
            self._tracer.instant(
                "server.batch_shed",
                category="server",
                client=batch.client_id,
                batch_id=batch.batch_id,
                retry_after_s=retry_after,
            )
        if on_done is not None:
            on_done(
                ProcessingResult(
                    client_id=batch.client_id,
                    task_id=batch.task_id,
                    photos_added=False,
                    coverage_cells=self._pipeline.coverage_cells,
                    venue_covered=self._pipeline.venue_covered,
                    batch_id=batch.batch_id,
                    error="backend overloaded",
                    retry_after_s=retry_after,
                )
            )

    # -- ledger garbage collection -----------------------------------------------------

    def _gc_ledgers(self) -> None:
        """Evict due ledger entries (inline sweep; schedules nothing).

        Entries become due ``ledger_retention_s`` after their owning task
        turned terminal. Batch outcomes are archived to the store first,
        so a duplicate arriving after eviction still re-ACKs safely; the
        archive itself is dropped ``archive_retention_s`` later (same
        inline sweep), so archive memory is bounded too.
        """
        now = self._now()
        queue = self._gc_queue
        keep_until = now + self._protocol.archive_retention_s
        while queue and queue[0][0] <= now:
            _, rids, bids = queue.popleft()
            for rid in rids:
                if self._request_ledger.pop(rid, None) is not None:
                    self._store.bump("ledger_evictions")
            for bid in bids:
                result = self._batch_ledger.get(bid)
                if result is None:
                    continue  # in flight again or already gone; keep safe
                self._store.archive_batch(
                    bid,
                    result.task_id,
                    result.photos_added,
                    result.error,
                    keep_until=keep_until,
                )
                del self._batch_ledger[bid]
                self._store.bump("ledger_evictions")
        dropped = self._store.gc_archive(now)
        if dropped:
            self._store.bump("archive_evictions", dropped)
        self._g_archive.set(self._store.archived_batch_count())

    def _note_ledgered(self, bid: Optional[str], task_id: Optional[int]) -> None:
        """Attach a ledgered batch id to its owning task for later GC."""
        if bid is None:
            return
        if task_id is None:
            self._gc_queue.append(
                (self._now() + self._protocol.ledger_retention_s, (), (bid,))
            )
        else:
            self._bids_by_task.setdefault(task_id, []).append(bid)

    def _maybe_schedule_gc(self, task_id: Optional[int]) -> None:
        """Queue a task's ledger entries for eviction once it is terminal."""
        if task_id is None:
            return
        task = self._store.maybe_task(task_id)
        if task is None or task.status not in (
            TaskStatus.COMPLETED,
            TaskStatus.FAILED,
        ):
            return
        if self._store.lease_of(task_id) is not None:
            return
        rids = tuple(self._rids_by_task.pop(task_id, ()))
        bids = tuple(self._bids_by_task.pop(task_id, ()))
        if not rids and not bids:
            return
        self._gc_queue.append(
            (self._now() + self._protocol.ledger_retention_s, rids, bids)
        )

    # -- lease reaper ------------------------------------------------------------------

    def reap_expired(self) -> int:
        """Sweep all leases and requeue the expired ones; returns the count.

        The event-driven reaper normally does this one lease at a time at
        the exact expiry instant; this sweep exists for external drivers
        (and tests) that want the classic periodic form.
        """
        reaped = 0
        for lease in self._store.expired_leases(self._sim.now):
            if self._reap_lease(lease.task_id):
                reaped += 1
        return reaped

    def _schedule_lease_reap(self, task_id: int, expires_at: float) -> None:
        if self._replay_now is not None:
            # Replayed grants must not schedule on the live (post-restart)
            # simulator; recovery re-arms every surviving lease afterwards
            # via arm_recovered_leases().
            return
        token = self._sim.schedule_at(
            expires_at,
            lambda: self._reap_lease(task_id),
            label=f"lease-reap:{task_id}",
        )
        self._lease_reaps[task_id] = token

    def _reap_lease(self, task_id: int) -> bool:
        """Requeue one task whose lease expired (client presumed gone)."""
        if self._fenced:
            return False  # stale timer from before a crash
        if self._persist is not None:
            # Logged unconditionally: whether this expires the lease or
            # defers to an in-flight upload is decided by the recovered
            # state at replay, exactly as it was live.
            self._persist.log_reap(task_id, self._now())
        if self._inflight_batches.get(task_id, 0) > 0:
            # The photos made it to the server before (or exactly at) the
            # expiry instant; the client did its job. Deterministically
            # defer to the upload outcome — ``_process`` completes, fails
            # or requeues the task and releases the lease either way.
            self._store.bump("lease_reaps_deferred")
            return False
        token = self._lease_reaps.pop(task_id, None)
        if token is not None and not token.executed:
            token.cancel()
        requeued = self._store.expire_lease(task_id, now=self._now())
        if requeued is None:
            return False
        self._m_leases_expired.inc()
        self._end_lease_span(task_id, "expired")
        # Abandoned work goes to the front: it blocks campaign progress
        # (MAX_TASKS=1 keeps the task stream serial), so retry it first.
        self._task_queue.appendleft(requeued)
        self._g_queue.set(len(self._task_queue))
        return True

    def _release_lease(self, task_id: int) -> None:
        token = self._lease_reaps.pop(task_id, None)
        if token is not None:
            token.cancel()
        self._store.release_lease(task_id)
        self._end_lease_span(task_id, "released")

    def _end_lease_span(self, task_id: int, outcome: str) -> None:
        span = self._lease_spans.pop(task_id, None)
        if span is not None:
            span.end(outcome=outcome)

    def _requeue_task(self, task_id: int) -> None:
        """Hand a leased task straight back to the queue (failed upload)."""
        task = self._store.maybe_task(task_id)
        if task is None or task.status != TaskStatus.ASSIGNED:
            return
        self._release_lease(task_id)
        pending = replace(task, status=TaskStatus.PENDING)
        self._store.record_task(pending)
        self._store.bump("tasks_requeued")
        self._m_tasks_requeued.inc()
        self._task_queue.appendleft(pending)
        self._g_queue.set(len(self._task_queue))

    # -- internals --------------------------------------------------------------------

    def _process(
        self,
        batch: PhotoBatch,
        on_done: Optional[Callable[[ProcessingResult], None]],
        arrived_at: Optional[float] = None,
        lane: Optional[Tuple[int, float, float]] = None,
    ) -> None:
        if self._fenced:
            return  # stale completion from before a crash
        t0 = arrived_at if arrived_at is not None else self._now()
        if batch.task_id is not None:
            live = self._inflight_batches.get(batch.task_id, 0) - 1
            if live > 0:
                self._inflight_batches[batch.task_id] = live
            else:
                self._inflight_batches.pop(batch.task_id, None)
        span = None
        if self._tracer.enabled:
            span = self._tracer.begin(
                "server.process_batch",
                category="server",
                client=batch.client_id,
                photos=len(batch.photos),
                batch_id=batch.batch_id,
            )
            span.start_sim_s = t0  # covers queueing + simulated SfM time
        task = self._store.maybe_task(batch.task_id) if batch.task_id is not None else None
        photos = list(batch.photos)
        if (
            task is not None
            and task.kind == TaskKind.ANNOTATION
            and self._annotation is not None
        ):
            # The online annotation tool runs server-side (Sec. III):
            # label the uploaded frames, fuse with Algorithm 5, imprint
            # with Algorithm 6, then reconstruct.
            annotated, context = AnnotationProcessor.split_batch(photos)
            if annotated:
                processed = self._annotation.process(annotated)
                self._pipeline.register_artificial_features(
                    processed.imprint.all_feature_ids(),
                    processed.imprint.all_feature_positions(),
                )
                photos = list(processed.imprint.photos) + context
                self._store.bump("annotations_collected", processed.n_annotations)
                self._store.bump("surfaces_identified", len(processed.objects))
        outcome = self._pipeline.process_batch(photos, task)
        self._store.save_maps(outcome.iteration, outcome.coverage_cells, outcome.maps)
        self._store.bump("photos_processed", len(batch.photos))
        if batch.task_id is not None and task is not None:
            if outcome.photos_added:
                # Only successful batches complete the task.
                self._release_lease(batch.task_id)
                self._store.complete_task(batch.task_id)
            else:
                # The batch registered zero photos: the attempt failed.
                # Release the lease and mark the attempt failed; Algorithm 1
                # already escalated (reissue / annotation task) via
                # ``outcome.new_tasks``, so the location is re-covered.
                self._release_lease(batch.task_id)
                current = self._store.maybe_task(batch.task_id)
                if current is not None and current.status == TaskStatus.ASSIGNED:
                    self._store.fail_task(batch.task_id)
        for new_task in outcome.new_tasks:
            self._task_queue.append(new_task)
        result = ProcessingResult(
            client_id=batch.client_id,
            task_id=batch.task_id,
            photos_added=outcome.photos_added,
            coverage_cells=outcome.coverage_cells,
            venue_covered=outcome.venue_covered,
            batch_id=batch.batch_id,
        )
        if batch.batch_id is not None:
            self._batch_ledger[batch.batch_id] = result
            self._note_ledgered(batch.batch_id, batch.task_id)
        self._result_log.append(result)
        self._maybe_schedule_gc(batch.task_id)
        if self._persist is not None:
            # Commit point: ledger + store + pipeline mutations above are
            # now fact; log them (and take a checkpoint if one is due)
            # before the ACK leaves. A crash before this line loses the
            # batch entirely (client retransmits); a crash after it loses
            # nothing.
            self._persist.log_batch(batch, arrived_at=t0, done_t=self._now(), lane=lane)
        self._h_process.record(self._now() - t0)
        if span is not None:
            span.end(
                photos_added=outcome.photos_added,
                coverage_cells=outcome.coverage_cells,
                new_tasks=len(outcome.new_tasks),
            )
        if on_done is not None:
            on_done(result)
