"""The mobile client: requests tasks, captures, uploads over the network.

One :class:`MobileClient` models the app of Sec. III / Fig. 3: it asks the
backend for a task, walks there with AR navigation, performs the 360°
capture (or the annotation flow), and streams the batch up through the
simulated channel. Driving several clients against one backend on one
event loop exercises the full distributed deployment.

The client end of the fault-tolerant protocol:

* every task request carries a fresh ``request_id`` and every upload a
  stable ``batch_id``; un-ACKed exchanges are retransmitted with
  exponential backoff (``ProtocolConfig``) until ``max_retries`` is
  exhausted, at which point the batch is abandoned (the backend's lease
  reaper requeues the task);
* duplicate or stale responses (replayed ACKs, reordered deliveries) are
  recognised by id and dropped, so faults never double-count work;
* :meth:`drop_out` models the participant who simply leaves — volunteers
  do (arXiv:1901.09264) — cancelling all client-side timers and letting
  the lease expire server-side.

With fault injection disabled every retransmission timer is cancelled by
the in-order ACK before it fires, leaving the event trace identical to
the lossless protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..annotation.tool import AnnotationCampaign
from ..camera.capture import CaptureSimulator
from ..camera.pose import CameraPose
from ..config import ProtocolConfig
from ..core.tasks import Task, TaskKind
from ..crowd.participants import Participant
from ..errors import BackendUnavailableError, ProtocolError
from ..geometry import Vec2
from ..nav.navigation import Navigator
from ..simkit.events import EventToken, Simulator
from ..simkit.network import DuplexLink
from ..simkit.rng import RngStream
from .backend import BackendServer
from .messages import PhotoBatch, ProcessingResult, TaskAssignment, TaskRequest

#: Guided captures are steady (same value the crowd simulator uses).
CLIENT_CAPTURE_BLUR = 0.03

#: Seconds per captured photo during a sweep.
CAPTURE_INTERVAL_S = 1.0

#: Default poll interval when the backend has no work yet (the live value
#: comes from ``ProtocolConfig.poll_interval_s``; this constant remains
#: as the published default).
POLL_INTERVAL_S = 5.0


@dataclass
class ClientStats:
    tasks_completed: int = 0
    photo_tasks: int = 0
    annotation_tasks: int = 0
    photos_uploaded: int = 0
    walk_time_s: float = 0.0
    localization_queries: int = 0
    localization_misses: int = 0
    retries: int = 0
    requests_abandoned: int = 0
    uploads_abandoned: int = 0
    stale_responses: int = 0
    duplicate_results: int = 0
    failed_results: int = 0
    backpressure: int = 0
    dropped_out: bool = False
    results: List[ProcessingResult] = field(default_factory=list)


class MobileClient:
    """One participant's phone connected to the backend."""

    def __init__(
        self,
        client_id: str,
        participant: Participant,
        server: BackendServer,
        capture: CaptureSimulator,
        navigator: Navigator,
        annotation: AnnotationCampaign,
        simulator: Simulator,
        link: DuplexLink,
        start_position: Vec2,
        photo_size_mb: float = 2.5,
        protocol: Optional[ProtocolConfig] = None,
        rng: Optional[RngStream] = None,
        poll_rng: Optional[RngStream] = None,
    ):
        self._client_id = client_id
        self._participant = participant
        self._server = server
        self._capture = capture
        self._navigator = navigator
        self._annotation = annotation
        self._sim = simulator
        self._link = link
        self._position = start_position
        self._photo_size_mb = photo_size_mb
        self._protocol = protocol if protocol is not None else ProtocolConfig()
        self._rng = rng
        self._poll_rng = poll_rng
        #: Per-photo service-time hint carried by task assignments; feeds
        #: the upload RTO floor without importing backend internals.
        self._service_hint_spp = 0.0
        self._active = False
        # Request / upload exchange state (one outstanding of each).
        self._request_seq = itertools.count(1)
        self._batch_seq = itertools.count(1)
        self._pending_request_id: Optional[str] = None
        self._request_attempt = 0
        self._request_rto: Optional[EventToken] = None
        self._pending_batch: Optional[PhotoBatch] = None
        self._upload_attempt = 0
        self._upload_rto: Optional[EventToken] = None
        self._acked_batches: set = set()
        self.stats = ClientStats()
        # Telemetry (shared bundle from the simulator; no-op by default).
        obs = simulator.telemetry
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_retries = metrics.counter("repro.client.retries")
        self._m_requests_abandoned = metrics.counter("repro.client.requests_abandoned")
        self._m_uploads_abandoned = metrics.counter("repro.client.uploads_abandoned")
        self._m_stale = metrics.counter("repro.client.stale_responses")
        self._m_dup_results = metrics.counter("repro.client.duplicate_results")
        self._m_backpressure = metrics.counter("repro.client.backpressure")
        self._m_photos = metrics.counter("repro.client.photos_uploaded")
        self._h_walk = metrics.histogram("repro.client.walk_s", base=1.0, growth=2.0)
        #: Open exchange spans (request -> assignment, upload -> ACK).
        self._request_span = None
        self._upload_span = None

    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def position(self) -> Vec2:
        return self._position

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        """Begin the request/capture/upload loop on the event queue."""
        if self._active:
            raise ProtocolError(f"client {self._client_id} already started")
        self._active = True
        self._sim.schedule(0.0, self._request_task, label=f"{self._client_id}:request")

    def stop(self) -> None:
        self._active = False
        self._cancel_timers()
        self._end_span("_request_span", outcome="stopped")
        self._end_span("_upload_span", outcome="stopped")

    def drop_out(self) -> None:
        """The participant abandons the campaign mid-task.

        Nothing is sent to the backend — a real volunteer just leaves.
        The task lease expires server-side and the reaper requeues it.
        """
        if not self._active:
            return
        self._active = False
        self.stats.dropped_out = True
        self._cancel_timers()
        self._end_span("_request_span", outcome="dropped")
        self._end_span("_upload_span", outcome="dropped")
        self._pending_request_id = None
        self._pending_batch = None

    # -- loop steps -----------------------------------------------------------------

    def _request_task(self) -> None:
        if not self._active:
            return
        self._pending_request_id = f"{self._client_id}:req-{next(self._request_seq)}"
        self._request_attempt = 0
        if self._tracer.enabled:
            self._end_span("_request_span", outcome="superseded")
            self._request_span = self._tracer.begin(
                "client.request",
                category="client",
                client=self._client_id,
                request_id=self._pending_request_id,
            )
        self._send_task_request()

    def _send_task_request(self) -> None:
        if not self._active or self._pending_request_id is None:
            return
        request = TaskRequest(
            client_id=self._client_id,
            position=self._position,
            request_id=self._pending_request_id,
        )
        self._link.uplink.send(
            request,
            self._deliver_task_request,
            size_mb=0.001,
            label="task-request",
        )
        timeout = self._protocol.timeout_for(self._request_attempt)
        self._request_rto = self._sim.schedule(
            timeout, self._on_request_timeout, label=f"{self._client_id}:rto-request"
        )

    def _deliver_task_request(self, msg: TaskRequest) -> None:
        """Uplink delivery of a task request to the (live?) backend.

        A crashed backend swallows the message exactly like the network
        losing it: nothing happens now, and the request RTO retransmits
        until a recovered instance answers.
        """
        try:
            assignment = self._server.handle_task_request(msg)
        except BackendUnavailableError:
            return
        self._on_assignment(assignment)

    def _on_request_timeout(self) -> None:
        if not self._active or self._pending_request_id is None:
            return
        if self._request_attempt >= self._protocol.max_retries:
            # Give up on this exchange; start a fresh one after a poll wait.
            self.stats.requests_abandoned += 1
            self._m_requests_abandoned.inc()
            self._end_span("_request_span", outcome="abandoned")
            self._pending_request_id = None
            self._sim.schedule(
                self._poll_delay(), self._request_task, label=f"{self._client_id}:poll"
            )
            return
        self._request_attempt += 1
        self.stats.retries += 1
        self._m_retries.inc()
        self._send_task_request()

    def _on_assignment(self, assignment: TaskAssignment) -> None:
        if not self._active:
            return
        if (
            assignment.request_id is not None
            and assignment.request_id != self._pending_request_id
        ):
            # Duplicate or reordered response to an exchange we already
            # settled; the backend's request ledger kept it idempotent.
            self.stats.stale_responses += 1
            self._m_stale.inc()
            return
        if self._request_rto is not None:
            self._request_rto.cancel()
            self._request_rto = None
        self._pending_request_id = None
        if assignment.task is None:
            if assignment.venue_covered:
                self._end_span("_request_span", outcome="covered")
                self._active = False
                self._cancel_timers()
                return
            # Nothing to do right now; poll again shortly. An overloaded
            # backend hints when re-polling is worthwhile.
            self._end_span("_request_span", outcome="empty")
            delay = (
                assignment.retry_after_s
                if assignment.retry_after_s is not None
                else self._poll_delay()
            )
            self._sim.schedule(
                delay, self._request_task, label=f"{self._client_id}:poll"
            )
            return
        if assignment.processing_s_per_photo is not None:
            self._service_hint_spp = assignment.processing_s_per_photo
        self._end_span(
            "_request_span", outcome="assigned", task_id=assignment.task.task_id
        )
        self._execute(assignment.task)

    def _execute(self, task: Task) -> None:
        if (
            self._rng is not None
            and self._participant.dropout_hazard > 0.0
            and self._rng.chance(self._participant.dropout_hazard)
        ):
            # The participant wanders off mid-walk; the lease will expire.
            self.drop_out()
            return
        start = self._localize()
        nav = self._navigator.navigate(start, task.location)
        self._position = nav.arrived
        self.stats.walk_time_s += nav.walk_time_s
        self._h_walk.record(nav.walk_time_s)

        if task.kind == TaskKind.PHOTO_COLLECTION:
            photos = list(
                self._capture.sweep(
                    nav.arrived,
                    self._participant.device,
                    step_deg=8.0,
                    blur=CLIENT_CAPTURE_BLUR,
                    start_timestamp_s=self._sim.now + nav.walk_time_s,
                    source=f"client:{self._client_id}",
                )
            )
            self.stats.photo_tasks += 1
        else:
            _surface, photos = self._annotation.collect_photos(
                task.location, self._participant.device, timestamp_s=self._sim.now
            )
            photos = photos + self._annotation.collect_context_photos(
                task.location, self._participant.device, timestamp_s=self._sim.now
            )
            self.stats.annotation_tasks += 1

        capture_time = nav.walk_time_s + CAPTURE_INTERVAL_S * len(photos)
        batch = PhotoBatch(
            client_id=self._client_id,
            task_id=task.task_id,
            photos=tuple(photos),
            batch_id=f"{self._client_id}:batch-{next(self._batch_seq)}",
        )
        self.stats.photos_uploaded += len(photos)
        self._m_photos.inc(len(photos))
        if self._tracer.enabled:
            # The walk + sweep occupies a known sim interval; record it as
            # a pre-timed span (no event-queue interaction).
            self._tracer.record(
                "client.capture_walk",
                self._sim.now,
                self._sim.now + capture_time,
                category="client",
                client=self._client_id,
                task_id=task.task_id,
                photos=len(photos),
                walk_s=nav.walk_time_s,
            )
        self._sim.schedule(
            capture_time,
            lambda: self._begin_upload(batch),
            label=f"{self._client_id}:capture",
        )

    def _localize(self) -> Vec2:
        """Image-based positioning before navigation (Sec. III).

        The client takes a query photo and asks the backend to match it
        against the model; on failure it falls back to dead reckoning
        (its last known position).
        """
        query = self._capture.take_photo(
            CameraPose(self._position, 0.0),
            self._participant.device,
            blur=CLIENT_CAPTURE_BLUR,
            timestamp_s=self._sim.now,
            source=f"query:{self._client_id}",
        )
        try:
            fix = self._server.handle_localization_query(query)
        except ProtocolError:
            fix = None
        self.stats.localization_queries += 1
        if fix is None:
            self.stats.localization_misses += 1
            return self._position
        return fix.position

    # -- upload path ----------------------------------------------------------------

    def _begin_upload(self, batch: PhotoBatch) -> None:
        if not self._active:
            return
        self._pending_batch = batch
        self._upload_attempt = 0
        if self._tracer.enabled:
            self._end_span("_upload_span", outcome="superseded")
            self._upload_span = self._tracer.begin(
                "client.upload",
                category="client",
                client=self._client_id,
                batch_id=batch.batch_id,
                photos=len(batch.photos),
            )
        self._transmit_batch()

    def _transmit_batch(self) -> None:
        if not self._active or self._pending_batch is None:
            return
        batch = self._pending_batch
        self._link.uplink.send(
            batch,
            self._deliver_photo_batch,
            size_mb=self._photo_size_mb * len(batch.photos),
            label="photo-batch",
        )
        timeout = self._protocol.timeout_for(
            self._upload_attempt, floor_s=self._ack_estimate_s(batch)
        )
        self._upload_rto = self._sim.schedule(
            timeout, self._on_upload_timeout, label=f"{self._client_id}:rto-upload"
        )

    def _deliver_photo_batch(self, msg: PhotoBatch) -> None:
        """Uplink delivery of a photo batch (lost if the backend is down).

        The upload RTO retransmits; the recovered backend's dedup ledger
        (or batch archive) keeps the retries idempotent.
        """
        try:
            self._server.handle_photo_batch(msg, self._on_result)
        except BackendUnavailableError:
            return

    def _poll_delay(self) -> float:
        """Idle re-poll wait, with seeded jitter when configured.

        A bare constant synchronises every idle client into a polling
        herd hitting the backend in the same tick; positive
        ``poll_jitter_s`` decorrelates them with a deterministic
        per-client draw. Zero jitter (the default) draws nothing and
        leaves the event trace unchanged.
        """
        base = self._protocol.poll_interval_s
        if self._poll_rng is not None and self._protocol.poll_jitter_s > 0.0:
            return base + self._poll_rng.uniform(0.0, self._protocol.poll_jitter_s)
        return base

    def _ack_estimate_s(self, batch: PhotoBatch) -> float:
        """Deterministic lower bound on the upload's ACK round trip.

        The per-photo service term comes from the assignment's
        ``processing_s_per_photo`` hint — the server owns its service
        model; the client no longer imports backend internals.
        """
        transfer = self._link.uplink.transfer_time(
            self._photo_size_mb * len(batch.photos)
        )
        return transfer + self._service_hint_spp * len(batch.photos)

    def _on_upload_timeout(self) -> None:
        if not self._active or self._pending_batch is None:
            return
        if self._upload_attempt >= self._protocol.max_retries:
            # The network ate every copy; abandon the batch. The lease
            # reaper will requeue the task for someone else.
            self.stats.uploads_abandoned += 1
            self._m_uploads_abandoned.inc()
            self._end_span("_upload_span", outcome="abandoned")
            self._pending_batch = None
            self._sim.schedule(
                self._poll_delay(), self._request_task, label=f"{self._client_id}:poll"
            )
            return
        self._upload_attempt += 1
        self.stats.retries += 1
        self._m_retries.inc()
        self._transmit_batch()

    def _on_result(self, result: ProcessingResult) -> None:
        if not self._active:
            return
        if result.retry_after_s is not None and not result.ok:
            # Backpressure: the backend shed the upload unprocessed. Not
            # a verdict on the batch — honor the hint and retransmit.
            if (
                self._pending_batch is not None
                and result.batch_id == self._pending_batch.batch_id
            ):
                self._handle_backpressure(result)
            else:
                self.stats.stale_responses += 1
                self._m_stale.inc()
            return
        advances_loop = result.batch_id is None  # legacy un-id'd exchange
        if result.batch_id is not None:
            if result.batch_id in self._acked_batches:
                self.stats.duplicate_results += 1
                self._m_dup_results.inc()
                return
            self._acked_batches.add(result.batch_id)
            if (
                self._pending_batch is not None
                and result.batch_id == self._pending_batch.batch_id
            ):
                if self._upload_rto is not None:
                    self._upload_rto.cancel()
                    self._upload_rto = None
                self._pending_batch = None
                self._end_span(
                    "_upload_span", outcome="ok" if result.ok else "failed"
                )
                advances_loop = True
            # else: a late ACK for a batch we already gave up on — record
            # the outcome but do not fork a second request loop.
        self.stats.results.append(result)
        if result.ok:
            self.stats.tasks_completed += 1
        else:
            self.stats.failed_results += 1
        if result.venue_covered:
            self._active = False
            self._cancel_timers()
            return
        if advances_loop:
            self._sim.schedule(1.0, self._request_task, label=f"{self._client_id}:next")

    def _handle_backpressure(self, result: ProcessingResult) -> None:
        """Shed upload: back off for at least the server's hint, resend."""
        self.stats.backpressure += 1
        self._m_backpressure.inc()
        if self._upload_rto is not None:
            self._upload_rto.cancel()
            self._upload_rto = None
        if self._upload_attempt >= self._protocol.max_retries:
            # Persistently overloaded; give the batch up like a timeout
            # would — the lease reaper requeues the task.
            self.stats.uploads_abandoned += 1
            self._m_uploads_abandoned.inc()
            self._end_span("_upload_span", outcome="abandoned")
            self._pending_batch = None
            self._sim.schedule(
                self._poll_delay(), self._request_task, label=f"{self._client_id}:poll"
            )
            return
        self._upload_attempt += 1
        self.stats.retries += 1
        self._m_retries.inc()
        delay = self._protocol.timeout_for(
            self._upload_attempt, floor_s=result.retry_after_s
        )
        self._sim.schedule(
            delay, self._transmit_batch, label=f"{self._client_id}:backoff-upload"
        )

    # -- internals -------------------------------------------------------------------

    def _cancel_timers(self) -> None:
        for token in (self._request_rto, self._upload_rto):
            if token is not None and token.active:
                token.cancel()
        self._request_rto = None
        self._upload_rto = None

    def _end_span(self, attr: str, **outcome_attrs) -> None:
        """Seal an open exchange span (no-op when tracing is off)."""
        span = getattr(self, attr)
        if span is not None:
            span.end(**outcome_attrs)
            setattr(self, attr, None)
