"""The mobile client: requests tasks, captures, uploads over the network.

One :class:`MobileClient` models the app of Sec. III / Fig. 3: it asks the
backend for a task, walks there with AR navigation, performs the 360°
capture (or the annotation flow), and streams the batch up through the
simulated channel. Driving several clients against one backend on one
event loop exercises the full distributed deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..annotation.tool import AnnotationCampaign
from ..camera.capture import CaptureSimulator
from ..camera.pose import CameraPose
from ..core.tasks import Task, TaskKind
from ..crowd.participants import Participant
from ..errors import ProtocolError
from ..geometry import Vec2
from ..nav.navigation import Navigator
from ..simkit.events import Simulator
from ..simkit.network import DuplexLink
from .backend import BackendServer
from .messages import PhotoBatch, ProcessingResult, TaskAssignment, TaskRequest

#: Guided captures are steady (same value the crowd simulator uses).
CLIENT_CAPTURE_BLUR = 0.03

#: Seconds per captured photo during a sweep.
CAPTURE_INTERVAL_S = 1.0


@dataclass
class ClientStats:
    tasks_completed: int = 0
    photo_tasks: int = 0
    annotation_tasks: int = 0
    photos_uploaded: int = 0
    walk_time_s: float = 0.0
    localization_queries: int = 0
    localization_misses: int = 0
    results: List[ProcessingResult] = field(default_factory=list)


class MobileClient:
    """One participant's phone connected to the backend."""

    def __init__(
        self,
        client_id: str,
        participant: Participant,
        server: BackendServer,
        capture: CaptureSimulator,
        navigator: Navigator,
        annotation: AnnotationCampaign,
        simulator: Simulator,
        link: DuplexLink,
        start_position: Vec2,
        photo_size_mb: float = 2.5,
    ):
        self._client_id = client_id
        self._participant = participant
        self._server = server
        self._capture = capture
        self._navigator = navigator
        self._annotation = annotation
        self._sim = simulator
        self._link = link
        self._position = start_position
        self._photo_size_mb = photo_size_mb
        self._active = False
        self.stats = ClientStats()

    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def position(self) -> Vec2:
        return self._position

    def start(self) -> None:
        """Begin the request/capture/upload loop on the event queue."""
        if self._active:
            raise ProtocolError(f"client {self._client_id} already started")
        self._active = True
        self._sim.schedule(0.0, self._request_task, label=f"{self._client_id}:request")

    def stop(self) -> None:
        self._active = False

    # -- loop steps -----------------------------------------------------------------

    def _request_task(self) -> None:
        if not self._active:
            return
        request = TaskRequest(client_id=self._client_id, position=self._position)
        self._link.uplink.send(
            request,
            lambda msg: self._on_assignment(self._server.handle_task_request(msg)),
            size_mb=0.001,
            label="task-request",
        )

    def _on_assignment(self, assignment: TaskAssignment) -> None:
        if not self._active:
            return
        if assignment.task is None:
            if assignment.venue_covered:
                self._active = False
                return
            # Nothing to do right now; poll again shortly.
            self._sim.schedule(5.0, self._request_task, label=f"{self._client_id}:poll")
            return
        self._execute(assignment.task)

    def _execute(self, task: Task) -> None:
        start = self._localize()
        nav = self._navigator.navigate(start, task.location)
        self._position = nav.arrived
        self.stats.walk_time_s += nav.walk_time_s

        if task.kind == TaskKind.PHOTO_COLLECTION:
            photos = list(
                self._capture.sweep(
                    nav.arrived,
                    self._participant.device,
                    step_deg=8.0,
                    blur=CLIENT_CAPTURE_BLUR,
                    start_timestamp_s=self._sim.now + nav.walk_time_s,
                    source=f"client:{self._client_id}",
                )
            )
            self.stats.photo_tasks += 1
        else:
            _surface, photos = self._annotation.collect_photos(
                task.location, self._participant.device, timestamp_s=self._sim.now
            )
            photos = photos + self._annotation.collect_context_photos(
                task.location, self._participant.device, timestamp_s=self._sim.now
            )
            self.stats.annotation_tasks += 1

        capture_time = nav.walk_time_s + CAPTURE_INTERVAL_S * len(photos)
        batch = PhotoBatch(
            client_id=self._client_id, task_id=task.task_id, photos=tuple(photos)
        )
        self.stats.photos_uploaded += len(photos)
        self._sim.schedule(
            capture_time,
            lambda: self._upload(batch),
            label=f"{self._client_id}:capture",
        )

    def _localize(self) -> Vec2:
        """Image-based positioning before navigation (Sec. III).

        The client takes a query photo and asks the backend to match it
        against the model; on failure it falls back to dead reckoning
        (its last known position).
        """
        import math

        query = self._capture.take_photo(
            CameraPose(self._position, 0.0),
            self._participant.device,
            blur=CLIENT_CAPTURE_BLUR,
            timestamp_s=self._sim.now,
            source=f"query:{self._client_id}",
        )
        try:
            fix = self._server.handle_localization_query(query)
        except ProtocolError:
            fix = None
        self.stats.localization_queries += 1
        if fix is None:
            self.stats.localization_misses += 1
            return self._position
        return fix.position

    def _upload(self, batch: PhotoBatch) -> None:
        self._link.uplink.send(
            batch,
            lambda msg: self._server.handle_photo_batch(msg, self._on_result),
            size_mb=self._photo_size_mb * len(batch.photos),
            label="photo-batch",
        )

    def _on_result(self, result: ProcessingResult) -> None:
        self.stats.results.append(result)
        self.stats.tasks_completed += 1
        if result.venue_covered:
            self._active = False
            return
        self._sim.schedule(1.0, self._request_task, label=f"{self._client_id}:next")
