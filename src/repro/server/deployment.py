"""A full simulated deployment: backend + N mobile clients + network.

This is the distributed-system harness the ICDCS audience cares about:
several phones concurrently requesting tasks, walking, capturing and
uploading over latency/bandwidth-limited links to one backend whose SfM
processing is itself time-consuming. Everything runs on one
discrete-event loop, so runs are deterministic and timings measurable.

Fault experiments layer on top without perturbing the lossless baseline:

* ``faults`` — a :class:`~repro.config.FaultConfig` applied to every
  client link (seeded per-link RNG streams keep runs reproducible);
* ``dropouts`` — ``{client_id: sim_time_s}`` scheduling deterministic
  mid-campaign abandonment;
* ``dropout_hazard`` — per-task stochastic abandonment probability
  applied to every participant.

With all three left at their defaults the deployment is event-for-event
identical to the lossless protocol (verified by the differential test in
``tests/test_fault_tolerance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional

from ..annotation.processor import AnnotationProcessor
from ..annotation.tool import AnnotationCampaign
from ..config import FaultConfig
from ..crowd.guided import GuidedCampaign
from ..crowd.participants import guided_participants
from ..errors import ConfigError, ProtocolError
from ..nav.localization import ImageLocalizer
from ..obs import Telemetry
from ..persist.host import BackendHost
from ..simkit.events import Simulator
from ..simkit.network import DuplexLink
from .backend import BackendServer
from .client import MobileClient


@dataclass(frozen=True)
class DeploymentReport:
    """Summary of one simulated deployment run.

    The first seven fields predate the fault-tolerance layer and stay
    byte-for-byte identical under a zero-fault configuration; the rest
    quantify the protocol's fault/retry/requeue behaviour and are all
    zero in a lossless run.
    """

    sim_time_s: float
    events_processed: int
    venue_covered: bool
    tasks_completed: int
    photos_uploaded: int
    total_traffic_mb: float
    coverage_cells: int
    # -- fault-tolerance accounting (all zero in a lossless run) --
    messages_lost: int = 0
    messages_duplicated: int = 0
    client_retries: int = 0
    uploads_abandoned: int = 0
    batches_deduped: int = 0
    requests_deduped: int = 0
    tasks_requeued: int = 0
    tasks_failed: int = 0
    leases_expired: int = 0
    dropouts: int = 0
    # -- SfM-lane accounting (all zero under the infinite-server model) --
    batches_shed: int = 0
    client_backpressure: int = 0
    sfm_queue_wait_s: float = 0.0
    sfm_peak_queue_depth: int = 0
    sfm_service_time_s: float = 0.0
    # -- durability accounting (all zero with persistence off) --
    backend_crashes: int = 0
    backend_recoveries: int = 0
    wal_records: int = 0
    snapshots_taken: int = 0
    # -- storage-fault accounting (all zero with pristine media) --
    wal_records_torn: int = 0
    snapshots_quarantined: int = 0
    recovery_fallbacks: int = 0

    @property
    def baseline_view(self) -> tuple:
        """The pre-fault-layer report fields, for differential checks."""
        return (
            self.sim_time_s,
            self.events_processed,
            self.venue_covered,
            self.tasks_completed,
            self.photos_uploaded,
            self.total_traffic_mb,
            self.coverage_cells,
        )


class Deployment:
    """Builds and runs a client/server SnapTask deployment."""

    def __init__(
        self,
        bench,
        n_clients: int = 2,
        faults: Optional[FaultConfig] = None,
        dropouts: Optional[Mapping[str, float]] = None,
        dropout_hazard: float = 0.0,
        telemetry: Optional[Telemetry] = None,
        full_rebuild: bool = False,
    ):
        """``bench`` is an :class:`repro.eval.workbench.Workbench`.

        ``faults`` overrides ``bench.config.network.faults`` for every
        client link; ``dropouts`` maps client ids to the simulated time
        at which they abandon the campaign; ``dropout_hazard`` gives all
        participants a per-task abandonment probability. ``telemetry``
        (default: disabled) instruments the whole stack — event loop,
        links, protocol, pipeline — without changing any behaviour.
        ``full_rebuild`` swaps the backend pipeline for its from-scratch
        oracle twin (identical outputs, no incremental caching) — the
        DST harness runs scenario twins through both and diffs them.
        """
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.simulator = Simulator(telemetry=self.telemetry)
        pipeline = bench.make_pipeline(
            telemetry=self.telemetry, full_rebuild=full_rebuild
        )
        server = BackendServer(
            pipeline,
            self.simulator,
            venue_id=bench.venue.name,
            localizer=ImageLocalizer(
                bench.config.nav, bench.rng.stream("deploy-localizer")
            ),
            annotation_processor=AnnotationProcessor(
                bench.venue, bench.config, bench.rng.stream("deploy-processor")
            ),
            protocol=bench.config.protocol,
            backend=bench.config.backend,
        )
        # The durable host wraps the server only when persistence is on —
        # the persistence-off object graph (and its event trace) stays
        # byte-for-byte the pre-durability one.
        persist_config = bench.config.persist
        # The storage-fault RNG is only materialised when injection is
        # armed, so pristine-media deployments draw nothing new and
        # their traces stay byte-for-byte identical.
        storage_rng = (
            bench.rng.stream("deploy-storage-faults")
            if persist_config.enabled
            and persist_config.storage_faults is not None
            and persist_config.storage_faults.enabled
            else None
        )
        self._host: Optional[BackendHost] = (
            BackendHost(server, self.simulator, persist_config, storage_rng=storage_rng)
            if persist_config.enabled
            else None
        )
        self.server = self._host if self._host is not None else server
        annotation = AnnotationCampaign(
            bench.venue, bench.capture, bench.config, bench.rng.stream("deploy-annot")
        )
        participants = guided_participants(
            max(2, n_clients), bench.rng.stream("deploy-participants")
        )
        network = bench.config.network
        if faults is not None:
            faults.validate()
            network = replace(network, faults=faults)
        self._crash_schedule = tuple(network.faults.backend_crashes)
        if self._crash_schedule and self._host is None:
            raise ConfigError(
                "backend_crashes requires persistence "
                "(config.persist.enabled / with_persistence())"
            )
        fault_mode = network.faults.enabled
        self.links: List[DuplexLink] = []
        self.clients: List[MobileClient] = []
        for i in range(n_clients):
            link_rng = bench.rng.stream(f"deploy-net-{i}") if fault_mode else None
            link = DuplexLink(self.simulator, network, name=f"client-{i}", rng=link_rng)
            self.links.append(link)
            participant = participants[i]
            if dropout_hazard > 0.0:
                participant = replace(participant, dropout_hazard=dropout_hazard)
            client_rng = (
                bench.rng.stream(f"deploy-dropout-{i}")
                if participant.dropout_hazard > 0.0
                else None
            )
            # Only materialised when jitter is on: the zero-jitter trace
            # must stay identical to the poll-herd baseline.
            poll_rng = (
                bench.rng.stream(f"deploy-poll-{i}")
                if bench.config.protocol.poll_jitter_s > 0.0
                else None
            )
            self.clients.append(
                MobileClient(
                    client_id=f"client-{i}",
                    participant=participant,
                    server=self.server,
                    capture=bench.capture,
                    navigator=bench.make_navigator(f"deploy-nav-{i}"),
                    annotation=annotation,
                    simulator=self.simulator,
                    link=link,
                    start_position=bench.venue.entrance,
                    photo_size_mb=network.photo_size_mb,
                    protocol=bench.config.protocol,
                    rng=client_rng,
                    poll_rng=poll_rng,
                )
            )
        self._dropouts: Dict[str, float] = dict(dropouts or {})
        known = {client.client_id for client in self.clients}
        unknown = set(self._dropouts) - known
        if unknown:
            raise ProtocolError(f"dropout schedule names unknown clients: {sorted(unknown)}")
        self._bench = bench

    @property
    def pipeline(self):
        """The *current* backend pipeline (recovery replaces the instance)."""
        return self.server.pipeline

    @property
    def host(self) -> Optional[BackendHost]:
        """The durable backend host, or None with persistence off."""
        return self._host

    def client(self, client_id: str) -> MobileClient:
        for candidate in self.clients:
            if candidate.client_id == client_id:
                return candidate
        raise ProtocolError(f"unknown client {client_id!r}")

    def bootstrap(self) -> None:
        """Seed the initial model (entrance video + geo-calibration)."""
        campaign = GuidedCampaign(
            venue=self._bench.venue,
            capture=self._bench.capture,
            pipeline=self.pipeline,
            navigator=self._bench.make_navigator("deploy-bootstrap-nav"),
            annotation=AnnotationCampaign(
                self._bench.venue,
                self._bench.capture,
                self._bench.config,
                self._bench.rng.stream("deploy-bootstrap-annot"),
            ),
            participants=guided_participants(2, self._bench.rng.stream("deploy-bsp")),
            rng=self._bench.rng.stream("deploy-bootstrap"),
        )
        outcome = campaign.bootstrap()
        for task in outcome.new_tasks:
            self.server.enqueue_task(task)

    def run(self, until_s: float = 20_000.0, max_events: int = 200_000) -> DeploymentReport:
        """Bootstrap, start all clients, and drive the event loop."""
        self.bootstrap()
        if self._host is not None:
            # Genesis checkpoint: recovery always has a base image, even
            # for a crash before the first cadence snapshot.
            self._host.genesis()
            for at_s, downtime_s in self._crash_schedule:
                self.simulator.schedule(
                    at_s,
                    lambda d=downtime_s: self._host.crash(d),
                    label="backend-crash",
                )
        for client in self.clients:
            client.start()
        for client_id, at_s in sorted(self._dropouts.items()):
            target = self.client(client_id)
            self.simulator.schedule(
                at_s, target.drop_out, label=f"{client_id}:dropout"
            )
        self.simulator.run(until=until_s, max_events=max_events)
        store = self.server.store
        return DeploymentReport(
            sim_time_s=self.simulator.now,
            events_processed=self.simulator.processed_events,
            venue_covered=self.pipeline.venue_covered,
            tasks_completed=sum(c.stats.tasks_completed for c in self.clients),
            photos_uploaded=sum(c.stats.photos_uploaded for c in self.clients),
            total_traffic_mb=sum(link.total_traffic_mb() for link in self.links),
            coverage_cells=self.pipeline.coverage_cells,
            messages_lost=sum(link.messages_lost for link in self.links),
            messages_duplicated=sum(link.messages_duplicated for link in self.links),
            client_retries=sum(c.stats.retries for c in self.clients),
            uploads_abandoned=sum(c.stats.uploads_abandoned for c in self.clients),
            batches_deduped=store.counter("batches_deduped"),
            requests_deduped=store.counter("requests_deduped"),
            tasks_requeued=store.counter("tasks_requeued"),
            tasks_failed=store.counter("tasks_failed"),
            leases_expired=store.counter("leases_expired"),
            dropouts=sum(1 for c in self.clients if c.stats.dropped_out),
            batches_shed=store.counter("batches_shed"),
            client_backpressure=sum(c.stats.backpressure for c in self.clients),
            sfm_queue_wait_s=self.server.sfm_queue_wait_total_s,
            sfm_peak_queue_depth=self.server.sfm_peak_queue_depth,
            sfm_service_time_s=self.server.sfm_service_time_total_s,
            backend_crashes=self._host.crash_count if self._host else 0,
            backend_recoveries=self._host.recovery_count if self._host else 0,
            wal_records=self._host.wal.position if self._host else 0,
            snapshots_taken=self._host.snapshotter.taken if self._host else 0,
            wal_records_torn=sum(
                r.wal_dropped_records for r in self._host.storage_fault_reports
            )
            if self._host
            else 0,
            snapshots_quarantined=sum(
                len(a.quarantined_seqs) for a in self._host.recovery_audits
            )
            if self._host
            else 0,
            recovery_fallbacks=sum(
                1 for a in self._host.recovery_audits if a.fallback
            )
            if self._host
            else 0,
        )
