"""A full simulated deployment: backend + N mobile clients + network.

This is the distributed-system harness the ICDCS audience cares about:
several phones concurrently requesting tasks, walking, capturing and
uploading over latency/bandwidth-limited links to one backend whose SfM
processing is itself time-consuming. Everything runs on one
discrete-event loop, so runs are deterministic and timings measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..annotation.processor import AnnotationProcessor
from ..annotation.tool import AnnotationCampaign
from ..crowd.guided import GuidedCampaign
from ..crowd.participants import guided_participants
from ..nav.localization import ImageLocalizer
from ..simkit.events import Simulator
from ..simkit.network import DuplexLink
from .backend import BackendServer
from .client import MobileClient


@dataclass(frozen=True)
class DeploymentReport:
    """Summary of one simulated deployment run."""

    sim_time_s: float
    events_processed: int
    venue_covered: bool
    tasks_completed: int
    photos_uploaded: int
    total_traffic_mb: float
    coverage_cells: int


class Deployment:
    """Builds and runs a client/server SnapTask deployment."""

    def __init__(self, bench, n_clients: int = 2):
        """``bench`` is an :class:`repro.eval.workbench.Workbench`."""
        self.simulator = Simulator()
        self.pipeline = bench.make_pipeline()
        self.server = BackendServer(
            self.pipeline,
            self.simulator,
            venue_id=bench.venue.name,
            localizer=ImageLocalizer(
                bench.config.nav, bench.rng.stream("deploy-localizer")
            ),
            annotation_processor=AnnotationProcessor(
                bench.venue, bench.config, bench.rng.stream("deploy-processor")
            ),
        )
        annotation = AnnotationCampaign(
            bench.venue, bench.capture, bench.config, bench.rng.stream("deploy-annot")
        )
        participants = guided_participants(
            max(2, n_clients), bench.rng.stream("deploy-participants")
        )
        self.links: List[DuplexLink] = []
        self.clients: List[MobileClient] = []
        for i in range(n_clients):
            link = DuplexLink(self.simulator, bench.config.network, name=f"client-{i}")
            self.links.append(link)
            self.clients.append(
                MobileClient(
                    client_id=f"client-{i}",
                    participant=participants[i],
                    server=self.server,
                    capture=bench.capture,
                    navigator=bench.make_navigator(f"deploy-nav-{i}"),
                    annotation=annotation,
                    simulator=self.simulator,
                    link=link,
                    start_position=bench.venue.entrance,
                    photo_size_mb=bench.config.network.photo_size_mb,
                )
            )
        self._bench = bench

    def bootstrap(self) -> None:
        """Seed the initial model (entrance video + geo-calibration)."""
        campaign = GuidedCampaign(
            venue=self._bench.venue,
            capture=self._bench.capture,
            pipeline=self.pipeline,
            navigator=self._bench.make_navigator("deploy-bootstrap-nav"),
            annotation=AnnotationCampaign(
                self._bench.venue,
                self._bench.capture,
                self._bench.config,
                self._bench.rng.stream("deploy-bootstrap-annot"),
            ),
            participants=guided_participants(2, self._bench.rng.stream("deploy-bsp")),
            rng=self._bench.rng.stream("deploy-bootstrap"),
        )
        outcome = campaign.bootstrap()
        for task in outcome.new_tasks:
            self.server._task_queue.append(task)  # noqa: SLF001 - deployment glue

    def run(self, until_s: float = 20_000.0, max_events: int = 200_000) -> DeploymentReport:
        """Bootstrap, start all clients, and drive the event loop."""
        self.bootstrap()
        for client in self.clients:
            client.start()
        self.simulator.run(until=until_s, max_events=max_events)
        return DeploymentReport(
            sim_time_s=self.simulator.now,
            events_processed=self.simulator.processed_events,
            venue_covered=self.pipeline.venue_covered,
            tasks_completed=sum(c.stats.tasks_completed for c in self.clients),
            photos_uploaded=sum(c.stats.photos_uploaded for c in self.clients),
            total_traffic_mb=sum(link.total_traffic_mb() for link in self.links),
            coverage_cells=self.pipeline.coverage_cells,
        )
