"""Wire messages between the mobile client and the backend server.

The SnapTask deployment is a distributed system (Sec. III): the client
requests tasks, streams photo batches up, and receives task assignments
and navigation data down. These dataclasses are the protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..camera.photo import Photo
from ..core.tasks import Task
from ..geometry import Vec2


class MessageType(enum.Enum):
    TASK_REQUEST = "task_request"
    TASK_ASSIGNMENT = "task_assignment"
    PHOTO_BATCH = "photo_batch"
    PROCESSING_RESULT = "processing_result"
    VENUE_COVERED = "venue_covered"
    LOCALIZATION_QUERY = "localization_query"
    LOCALIZATION_RESPONSE = "localization_response"


@dataclass(frozen=True)
class TaskRequest:
    """Client asks for work.

    ``request_id`` makes the exchange idempotent: a retransmitted or
    network-duplicated request with the same id is answered with the
    original assignment instead of leaking a second task lease.
    ``None`` (the default) opts out of deduplication, preserving the
    pre-lease local-call semantics.
    """

    client_id: str
    position: Optional[Vec2] = None
    request_id: Optional[str] = None

    @property
    def message_type(self) -> MessageType:
        return MessageType.TASK_REQUEST


@dataclass(frozen=True)
class TaskAssignment:
    """Server assigns a task (or signals completion with task=None).

    Assignments are *leases*: ``lease_expires_at`` is the simulated time
    at which the backend reaps the assignment and requeues the task if
    the photos have not arrived. ``request_id`` echoes the request so the
    client can discard stale or duplicated responses.

    ``processing_s_per_photo`` is the server's expected per-photo SfM
    service time — the client derives its upload RTO floor from it
    instead of importing backend internals. ``retry_after_s`` is set on
    empty assignments when the processing lane is saturated: a hint for
    when re-polling is worthwhile.
    """

    client_id: str
    task: Optional[Task]
    venue_covered: bool = False
    request_id: Optional[str] = None
    lease_expires_at: Optional[float] = None
    processing_s_per_photo: Optional[float] = None
    retry_after_s: Optional[float] = None

    @property
    def message_type(self) -> MessageType:
        return (
            MessageType.VENUE_COVERED if self.task is None else MessageType.TASK_ASSIGNMENT
        )


@dataclass(frozen=True)
class PhotoBatch:
    """Client streams captured photos for one task.

    ``batch_id`` identifies the *logical* batch across retransmissions:
    the backend keeps a dedup ledger keyed on it, so a duplicated or
    retried upload is processed exactly once (and re-ACKed from the
    ledger). ``None`` opts out of deduplication.
    """

    client_id: str
    task_id: Optional[int]
    photos: Tuple[Photo, ...]
    batch_id: Optional[str] = None

    @property
    def message_type(self) -> MessageType:
        return MessageType.PHOTO_BATCH

    @property
    def size_mb(self) -> float:
        """Payload size used by the network simulation (per-photo size is
        applied by the channel sender)."""
        return float(len(self.photos))


@dataclass(frozen=True)
class ProcessingResult:
    """Server reports the outcome of one processed batch.

    Doubles as the upload ACK: ``batch_id`` echoes the batch so the
    client can cancel its retransmission timer. ``error`` is set instead
    of raising when a remote client's upload is malformed — a bad upload
    must never crash the event loop.

    ``retry_after_s`` marks a *backpressure* reply: the admission queue
    was full, the batch was shed unprocessed, and the client should
    retransmit no sooner than the hint. Shed replies are not verdicts —
    they are never ledgered or logged, and the batch id stays live for
    the eventual real processing.
    """

    client_id: str
    task_id: Optional[int]
    photos_added: bool
    coverage_cells: int
    venue_covered: bool
    batch_id: Optional[str] = None
    error: Optional[str] = None
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def message_type(self) -> MessageType:
        return MessageType.PROCESSING_RESULT
