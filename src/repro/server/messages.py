"""Wire messages between the mobile client and the backend server.

The SnapTask deployment is a distributed system (Sec. III): the client
requests tasks, streams photo batches up, and receives task assignments
and navigation data down. These dataclasses are the protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..camera.photo import Photo
from ..core.tasks import Task
from ..geometry import Vec2


class MessageType(enum.Enum):
    TASK_REQUEST = "task_request"
    TASK_ASSIGNMENT = "task_assignment"
    PHOTO_BATCH = "photo_batch"
    PROCESSING_RESULT = "processing_result"
    VENUE_COVERED = "venue_covered"
    LOCALIZATION_QUERY = "localization_query"
    LOCALIZATION_RESPONSE = "localization_response"


@dataclass(frozen=True)
class TaskRequest:
    """Client asks for work."""

    client_id: str
    position: Optional[Vec2] = None

    @property
    def message_type(self) -> MessageType:
        return MessageType.TASK_REQUEST


@dataclass(frozen=True)
class TaskAssignment:
    """Server assigns a task (or signals completion with task=None)."""

    client_id: str
    task: Optional[Task]
    venue_covered: bool = False

    @property
    def message_type(self) -> MessageType:
        return (
            MessageType.VENUE_COVERED if self.task is None else MessageType.TASK_ASSIGNMENT
        )


@dataclass(frozen=True)
class PhotoBatch:
    """Client streams captured photos for one task."""

    client_id: str
    task_id: Optional[int]
    photos: Tuple[Photo, ...]

    @property
    def message_type(self) -> MessageType:
        return MessageType.PHOTO_BATCH

    @property
    def size_mb(self) -> float:
        """Payload size used by the network simulation (per-photo size is
        applied by the channel sender)."""
        return float(len(self.photos))


@dataclass(frozen=True)
class ProcessingResult:
    """Server reports the outcome of one processed batch."""

    client_id: str
    task_id: Optional[int]
    photos_added: bool
    coverage_cells: int
    venue_covered: bool

    @property
    def message_type(self) -> MessageType:
        return MessageType.PROCESSING_RESULT
