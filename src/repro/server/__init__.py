"""Client/server deployment layer over the discrete-event simulator."""

from .backend import PROCESSING_S_PER_PHOTO, BackendServer
from .client import ClientStats, MobileClient
from .deployment import Deployment, DeploymentReport
from .messages import (
    MessageType,
    PhotoBatch,
    ProcessingResult,
    TaskAssignment,
    TaskRequest,
)
from .storage import BackendStore, MapSnapshot

__all__ = [
    "BackendServer",
    "BackendStore",
    "ClientStats",
    "Deployment",
    "DeploymentReport",
    "MapSnapshot",
    "MessageType",
    "MobileClient",
    "PROCESSING_S_PER_PHOTO",
    "PhotoBatch",
    "ProcessingResult",
    "TaskAssignment",
    "TaskRequest",
]
