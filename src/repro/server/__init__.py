"""Client/server deployment layer over the discrete-event simulator."""

from .backend import PROCESSING_S_PER_PHOTO, BackendServer
from .client import CAPTURE_INTERVAL_S, POLL_INTERVAL_S, ClientStats, MobileClient
from .deployment import Deployment, DeploymentReport
from .messages import (
    MessageType,
    PhotoBatch,
    ProcessingResult,
    TaskAssignment,
    TaskRequest,
)
from .storage import BackendStore, Lease, MapSnapshot

__all__ = [
    "BackendServer",
    "BackendStore",
    "CAPTURE_INTERVAL_S",
    "ClientStats",
    "Deployment",
    "DeploymentReport",
    "Lease",
    "MapSnapshot",
    "MessageType",
    "MobileClient",
    "POLL_INTERVAL_S",
    "PROCESSING_S_PER_PHOTO",
    "PhotoBatch",
    "ProcessingResult",
    "TaskAssignment",
    "TaskRequest",
]
