"""Backend storage: "the model and maps are stored in a database for
further iterations" (Algorithm 1's output handling).

An in-memory store with the semantics the backend needs: versioned map
snapshots per venue, task ledger, and simple metrics counters. The store
is deliberately synchronous and single-writer — the paper's backend
processes one batch at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.tasks import Task, TaskStatus
from ..errors import ProtocolError
from ..mapping.coverage import CoverageMaps


@dataclass(frozen=True)
class MapSnapshot:
    """One stored (iteration, maps, coverage) record."""

    version: int
    iteration: int
    coverage_cells: int
    maps: CoverageMaps


class BackendStore:
    """In-memory database for one venue's models, maps and tasks."""

    def __init__(self, venue_id: str):
        self._venue_id = venue_id
        self._snapshots: List[MapSnapshot] = []
        self._tasks: Dict[int, Task] = {}
        self._assignments: Dict[int, str] = {}  # task id -> client id
        self._counters: Dict[str, int] = {}

    @property
    def venue_id(self) -> str:
        return self._venue_id

    # -- map snapshots -----------------------------------------------------------

    def save_maps(self, iteration: int, coverage_cells: int, maps: CoverageMaps) -> MapSnapshot:
        snapshot = MapSnapshot(
            version=len(self._snapshots) + 1,
            iteration=iteration,
            coverage_cells=coverage_cells,
            maps=maps,
        )
        self._snapshots.append(snapshot)
        return snapshot

    def latest_maps(self) -> Optional[MapSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    def snapshot_history(self) -> List[MapSnapshot]:
        return list(self._snapshots)

    # -- task ledger ----------------------------------------------------------------

    def record_task(self, task: Task) -> None:
        self._tasks[task.task_id] = task

    def assign_task(self, task_id: int, client_id: str) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise ProtocolError(f"unknown task {task_id}")
        if task.status not in (TaskStatus.PENDING,):
            raise ProtocolError(f"task {task_id} is {task.status.value}, not assignable")
        assigned = task.assigned()
        self._tasks[task_id] = assigned
        self._assignments[task_id] = client_id
        return assigned

    def complete_task(self, task_id: int) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise ProtocolError(f"unknown task {task_id}")
        done = task.completed()
        self._tasks[task_id] = done
        return done

    def task(self, task_id: int) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise ProtocolError(f"unknown task {task_id}") from None

    def pending_tasks(self) -> List[Task]:
        return sorted(
            (t for t in self._tasks.values() if t.status == TaskStatus.PENDING),
            key=lambda t: t.task_id,
        )

    def assignee_of(self, task_id: int) -> Optional[str]:
        return self._assignments.get(task_id)

    def tasks_by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.status.value] = counts.get(task.status.value, 0) + 1
        return counts

    # -- counters --------------------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> int:
        self._counters[counter] = self._counters.get(counter, 0) + amount
        return self._counters[counter]

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)
