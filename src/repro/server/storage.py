"""Backend storage: "the model and maps are stored in a database for
further iterations" (Algorithm 1's output handling).

An in-memory store with the semantics the backend needs: versioned map
snapshots per venue, task ledger with *leases*, and simple metrics
counters. The store is deliberately synchronous and single-writer — the
paper's backend processes one batch at a time.

Leases are the fault-tolerance half of the task ledger: crowd workers
abandon assigned tasks (arXiv:1901.09264 measures how often), so every
assignment carries a simulated-time expiry. The backend's reaper calls
:meth:`BackendStore.expire_lease` when the expiry passes without an
upload, flipping the task back to PENDING so it can be reissued; no
issued task is ever silently lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from ..core.tasks import Task, TaskStatus
from ..errors import LeaseError, ProtocolError
from ..mapping.coverage import CoverageMaps


@dataclass(frozen=True)
class MapSnapshot:
    """One stored (iteration, maps, coverage) record."""

    version: int
    iteration: int
    coverage_cells: int
    maps: CoverageMaps


@dataclass(frozen=True)
class ArchivedBatch:
    """Durable record of one processed batch, kept after ledger eviction.

    The backend's in-memory dedup ledger is bounded (entries are evicted
    once the owning task is terminal and the retention window passes);
    the archive is what answers a duplicate that arrives *after*
    eviction — enough to synthesise a safe re-ACK without reprocessing.
    """

    batch_id: str
    task_id: Optional[int]
    photos_added: bool
    error: Optional[str] = None
    #: Simulated time after which the archive may drop this record. The
    #: protocol's duplicate-suppression window is finite, so the archive
    #: is too — ``inf`` means "keep forever" (legacy callers).
    keep_until: float = float("inf")


@dataclass(frozen=True)
class Lease:
    """One live task assignment with its simulated-time expiry."""

    task_id: int
    client_id: str
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class BackendStore:
    """In-memory database for one venue's models, maps and tasks."""

    def __init__(self, venue_id: str):
        self._venue_id = venue_id
        self._snapshots: List[MapSnapshot] = []
        self._tasks: Dict[int, Task] = {}
        self._assignments: Dict[int, str] = {}  # task id -> client id
        self._leases: Dict[int, Lease] = {}  # task id -> live lease
        self._batch_archive: Dict[str, ArchivedBatch] = {}
        self._archive_queue: Deque[Tuple[float, str]] = deque()
        self._counters: Dict[str, int] = {}

    @property
    def venue_id(self) -> str:
        return self._venue_id

    # -- map snapshots -----------------------------------------------------------

    def save_maps(self, iteration: int, coverage_cells: int, maps: CoverageMaps) -> MapSnapshot:
        snapshot = MapSnapshot(
            version=len(self._snapshots) + 1,
            iteration=iteration,
            coverage_cells=coverage_cells,
            maps=maps,
        )
        self._snapshots.append(snapshot)
        return snapshot

    def latest_maps(self) -> Optional[MapSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    def snapshot_history(self) -> List[MapSnapshot]:
        return list(self._snapshots)

    # -- task ledger ----------------------------------------------------------------

    def record_task(self, task: Task) -> None:
        self._tasks[task.task_id] = task

    def assign_task(
        self,
        task_id: int,
        client_id: str,
        granted_at: float = 0.0,
        expires_at: Optional[float] = None,
    ) -> Task:
        """Mark a pending task assigned; lease it when ``expires_at`` is given."""
        task = self._tasks.get(task_id)
        if task is None:
            raise ProtocolError(f"unknown task {task_id}")
        if task.status not in (TaskStatus.PENDING,):
            raise ProtocolError(f"task {task_id} is {task.status.value}, not assignable")
        if task_id in self._leases:
            raise LeaseError(f"task {task_id} already carries a live lease")
        assigned = task.assigned()
        self._tasks[task_id] = assigned
        self._assignments[task_id] = client_id
        if expires_at is not None:
            self._leases[task_id] = Lease(
                task_id=task_id,
                client_id=client_id,
                granted_at=granted_at,
                expires_at=expires_at,
            )
        return assigned

    def complete_task(self, task_id: int) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise ProtocolError(f"unknown task {task_id}")
        done = task.completed()
        self._tasks[task_id] = done
        self._leases.pop(task_id, None)
        return done

    def fail_task(self, task_id: int) -> Task:
        """Mark a task failed (batch registered nothing) and drop its lease.

        Failed attempts are terminal for the *task object* — Algorithm 1
        escalates by issuing a fresh reissue/annotation task — but the
        lease is released so the ledger never pins a dead assignment.
        """
        task = self._tasks.get(task_id)
        if task is None:
            raise ProtocolError(f"unknown task {task_id}")
        failed = task.failed()
        self._tasks[task_id] = failed
        self._leases.pop(task_id, None)
        self.bump("tasks_failed")
        return failed

    def expire_lease(self, task_id: int, now: float) -> Optional[Task]:
        """Reap one lease if it has expired; return the requeue-able task.

        Returns ``None`` when there is nothing to reap (no live lease,
        task already finished, or the lease has not expired yet).
        """
        lease = self._leases.get(task_id)
        if lease is None:
            return None
        if not lease.expired(now):
            return None
        task = self._tasks.get(task_id)
        self._leases.pop(task_id, None)
        self._assignments.pop(task_id, None)
        if task is None or task.status != TaskStatus.ASSIGNED:
            # A lease outliving its task's ASSIGNED state is a ledger
            # inconsistency (normally complete/fail/release pops it);
            # dropping it silently would hide the bug from the DST
            # invariant layer, so account for the cleanup.
            self.bump("orphan_leases_dropped")
            return None
        pending = replace(task, status=TaskStatus.PENDING)
        self._tasks[task_id] = pending
        self.bump("leases_expired")
        self.bump("tasks_requeued")
        return pending

    def release_lease(self, task_id: int) -> Optional[Lease]:
        """Drop a lease without touching the task status (clean hand-back)."""
        return self._leases.pop(task_id, None)

    def lease_of(self, task_id: int) -> Optional[Lease]:
        return self._leases.get(task_id)

    def active_leases(self) -> List[Lease]:
        return sorted(self._leases.values(), key=lambda lease: lease.task_id)

    def expired_leases(self, now: float) -> List[Lease]:
        return [lease for lease in self.active_leases() if lease.expired(now)]

    def task(self, task_id: int) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise ProtocolError(f"unknown task {task_id}") from None

    def maybe_task(self, task_id: int) -> Optional[Task]:
        return self._tasks.get(task_id)

    def pending_tasks(self) -> List[Task]:
        return sorted(
            (t for t in self._tasks.values() if t.status == TaskStatus.PENDING),
            key=lambda t: t.task_id,
        )

    def assignee_of(self, task_id: int) -> Optional[str]:
        return self._assignments.get(task_id)

    def tasks_with_status(self, status: TaskStatus) -> List[Task]:
        """All recorded tasks currently in ``status`` (ledger-order)."""
        return [t for t in self._tasks.values() if t.status == status]

    def tasks_by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.status.value] = counts.get(task.status.value, 0) + 1
        return counts

    def recorded_task_count(self) -> int:
        """Every task the backend ever issued to a client."""
        return len(self._tasks)

    # -- batch archive ---------------------------------------------------------------

    def archive_batch(
        self,
        batch_id: str,
        task_id: Optional[int],
        photos_added: bool,
        error: Optional[str] = None,
        keep_until: float = float("inf"),
    ) -> ArchivedBatch:
        """Persist a processed batch's outcome past its ledger eviction.

        The entry is retained until ``keep_until`` (simulated seconds);
        :meth:`gc_archive` drops due entries. Re-archiving the same
        ``batch_id`` refreshes the record but *not* its queue slot — the
        expiry sweep tolerates stale slots by re-checking ``keep_until``
        on the live record before dropping it.
        """
        record = ArchivedBatch(
            batch_id=batch_id,
            task_id=task_id,
            photos_added=photos_added,
            error=error,
            keep_until=keep_until,
        )
        self._batch_archive[batch_id] = record
        if keep_until != float("inf"):
            self._archive_queue.append((keep_until, batch_id))
        return record

    def archived_batch(self, batch_id: str) -> Optional[ArchivedBatch]:
        return self._batch_archive.get(batch_id)

    def archived_batch_count(self) -> int:
        return len(self._batch_archive)

    def gc_archive(self, now: float) -> int:
        """Drop archived batches whose retention window has passed.

        Archive entries are enqueued in ``keep_until`` order (callers
        archive with a fixed retention offset from a monotonic clock), so
        a front-of-queue sweep is O(dropped). Returns the drop count.
        """
        dropped = 0
        while self._archive_queue and self._archive_queue[0][0] <= now:
            _, batch_id = self._archive_queue.popleft()
            record = self._batch_archive.get(batch_id)
            if record is None or record.keep_until > now:
                continue  # stale queue slot (re-archived later or gone)
            del self._batch_archive[batch_id]
            dropped += 1
        return dropped

    # -- digest projection -----------------------------------------------------------

    def digest_view(self) -> Dict[str, object]:
        """Canonical-JSON-able projection of all durable store state.

        Consumed by ``repro.persist.digest`` for the recovery-idempotency
        audit; reprs of the frozen dataclasses are exact and ordered.
        """
        return {
            "venue": self._venue_id,
            "tasks": {str(tid): repr(t) for tid, t in sorted(self._tasks.items())},
            "assignments": {
                str(tid): cid for tid, cid in sorted(self._assignments.items())
            },
            "leases": {str(tid): repr(l) for tid, l in sorted(self._leases.items())},
            "archive": {
                bid: repr(rec) for bid, rec in sorted(self._batch_archive.items())
            },
            "archive_queue": [
                [repr(due), bid] for due, bid in self._archive_queue
            ],
            "snapshots": [
                [s.version, s.iteration, s.coverage_cells] for s in self._snapshots
            ],
            "counters": dict(sorted(self._counters.items())),
        }

    # -- counters --------------------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> int:
        self._counters[counter] = self._counters.get(counter, 0) + amount
        return self._counters[counter]

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)
