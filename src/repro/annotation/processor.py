"""Server-side annotation processing.

In the deployment (Sec. III), the *online annotation tool* and the fusion
pipeline live on the backend: "The photos and annotations are then sent to
the backend server for processing." :class:`AnnotationProcessor` is that
server-side piece — given an uploaded photo set it collects the crowd
workers' labels, fuses them with Algorithm 5 and imprints textures with
Algorithm 6. Both the in-process campaign and the client/server backend
share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..camera.photo import Photo
from ..config import SnapTaskConfig
from ..simkit.rng import RngStream
from ..venue.model import Venue
from .bounds import FusedObject, get_marked_obstacle_bounds
from .imprint import ImprintResult, reconstruct_featureless_surfaces
from .textures import TextureDatabase
from .workers import WorkerPool


@dataclass(frozen=True)
class ProcessedAnnotation:
    """Output of server-side annotation processing for one photo set."""

    n_annotations: int
    objects: Tuple[FusedObject, ...]
    imprint: ImprintResult


class AnnotationProcessor:
    """Runs workers + Algorithm 5 + Algorithm 6 on uploaded photo sets."""

    def __init__(
        self,
        venue: Venue,
        config: SnapTaskConfig,
        rng: RngStream,
        database: Optional[TextureDatabase] = None,
    ):
        self._venue = venue
        self._config = config
        self._rng = rng
        self._database = database if database is not None else TextureDatabase()
        self._workers = WorkerPool(venue, config.annotation, rng.child("workers"))
        self._set_counter = 0

    @property
    def database(self) -> TextureDatabase:
        return self._database

    def process(self, photos: Sequence[Photo]) -> ProcessedAnnotation:
        """Label, fuse and imprint one annotated photo set."""
        self._set_counter += 1
        set_rng = self._rng.child(f"set-{self._set_counter}")
        photos = list(photos)
        annotations = self._workers.annotate_photo_set(photos)
        n_annotations = sum(len(v) for v in annotations.values())
        objects = get_marked_obstacle_bounds(
            [p.photo_id for p in photos],
            annotations,
            self._config.annotation,
            set_rng.child("fusion"),
        )
        imprint = reconstruct_featureless_surfaces(
            photos,
            objects,
            self._venue.featureless_surfaces(),
            self._database,
            self._config.annotation,
            set_rng.child("imprint"),
        )
        return ProcessedAnnotation(
            n_annotations=n_annotations,
            objects=tuple(objects),
            imprint=imprint,
        )

    @staticmethod
    def split_batch(photos: Sequence[Photo]) -> Tuple[List[Photo], List[Photo]]:
        """Split an uploaded annotation batch into (annotated, context).

        The mobile client tags the frames it wants labelled with source
        "annotation"; panned context shots carry "annotation-context".
        """
        annotated = [p for p in photos if p.source.startswith("annotation") and "context" not in p.source and "empty" not in p.source]
        context = [p for p in photos if p not in annotated]
        return annotated, context
