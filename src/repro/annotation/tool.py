"""The annotation task, end to end.

"The annotation task is meant to aid reconstruction of featureless
surfaces and consists of two parts. First, a user is asked to take photos
that include the featureless surface. The photos are sent to an online
annotation tool, where participants are asked to mark 4 points of the
featureless surfaces on each of the photos. The photos and annotations are
then sent to the backend server for processing." (Sec. III)

:class:`AnnotationCampaign` simulates that loop: the on-site participant's
photo capture, the online workers' labelling, Algorithm 5 fusion,
Algorithm 6 imprinting, and the final SfM re-run through the pipeline.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..camera.capture import CaptureSimulator
from ..camera.intrinsics import Intrinsics
from ..camera.photo import Photo
from ..config import SnapTaskConfig
from ..core.pipeline import BatchOutcome, SnapTaskPipeline
from ..core.tasks import Task
from ..errors import AnnotationError
from ..geometry import Vec2
from ..simkit.rng import RngStream
from ..venue.model import Venue
from ..venue.surfaces import Surface
from .bounds import FusedObject, get_marked_obstacle_bounds
from .imprint import ImprintResult, reconstruct_featureless_surfaces
from .processor import AnnotationProcessor
from .textures import TextureDatabase
from .workers import WorkerPool

#: How far in front of the target surface the participant stands.
STAND_OFF_DISTANCE_M = 4.5

#: Lateral spread of the T photo positions along the surface, metres.
PHOTO_SPREAD_M = 1.7

#: Yaw offsets (degrees) applied to successive photos relative to facing
#: the surface head-on. The outer, oblique shots keep interior context in
#: frame, which is what lets the photo set register into the model; the
#: imprinted texture then chains the frontal shots in.
PHOTO_YAW_OFFSETS_DEG = (-10.0, 10.0, -30.0, 30.0)

#: Yaw offsets of the context shots the client captures while panning
#: between annotated frames.
CONTEXT_YAW_OFFSETS_DEG = (-115.0, -75.0, -45.0, 45.0, 75.0, 115.0)

#: Annotation only makes sense when a smooth surface is actually nearby.
MAX_SURFACE_DISTANCE_M = 6.0


@dataclass(frozen=True)
class AnnotationTaskResult:
    """Everything one annotation task produced."""

    task: Task
    #: Surface the participant targeted; ``-1`` when the venue offered none.
    target_surface_id: int
    photos: Tuple[Photo, ...]
    n_annotations: int
    fused_objects: Tuple[FusedObject, ...]
    imprint: ImprintResult
    outcome: Optional[BatchOutcome]

    @property
    def n_identified(self) -> int:
        """Table I's "Identified surfaces" column."""
        return len(self.fused_objects)

    def n_reconstructed(self, model) -> int:
        """Table I's "Reconstructed surfaces": objects with >= 1 point
        actually present in the model cloud."""
        cloud_ids = set(int(f) for f in model.cloud.feature_ids)
        count = 0
        for obj in self.imprint.objects:
            if any(fid in cloud_ids for fid in obj.feature_ids):
                count += 1
        return count


class AnnotationCampaign:
    """Simulates participants + online workers for annotation tasks."""

    def __init__(
        self,
        venue: Venue,
        capture: CaptureSimulator,
        config: SnapTaskConfig,
        rng: RngStream,
        database: Optional[TextureDatabase] = None,
    ):
        self._venue = venue
        self._capture = capture
        self._config = config
        self._rng = rng
        self._database = database if database is not None else TextureDatabase()
        self._processor = AnnotationProcessor(
            venue, config, rng.child("processor"), database=self._database
        )
        self._task_counter = 0

    @property
    def database(self) -> TextureDatabase:
        return self._database

    def _stand_base(self, surface: Surface, location: Vec2) -> Vec2:
        """Stand point with line of sight to the surface midpoint.

        Starts at the preferred stand-off distance and walks closer until
        the surface is actually visible (a bookshelf may block the long
        view); falls back to the task location itself.
        """
        import numpy as np

        target = surface.segment.midpoint
        normal = surface.segment.normal
        side = 1.0 if (location - target).dot(normal) >= 0 else -1.0
        mid_z = surface.base_z + surface.height / 2.0
        for distance in (STAND_OFF_DISTANCE_M, 3.5, 2.8, 2.2, 1.8):
            base = self._venue.nearest_traversable(target + normal * (side * distance))
            visible = self._venue.opaque_soup.visible(
                base,
                np.array([[target.x, target.y]]),
                target_margin=5e-3,
                origin_z=1.5,
                target_z=np.array([mid_z]),
            )
            if bool(visible[0]):
                return base
        return self._venue.nearest_traversable(location)

    def collect_photos(
        self, location: Vec2, intrinsics: Intrinsics, timestamp_s: float = 0.0
    ) -> Tuple[Optional[Surface], List[Photo]]:
        """The on-site participant takes T photos facing the surface.

        When the venue has no featureless surface at all (generated venues
        may have none), the participant has nothing to face; they photograph
        the spot itself and the returned surface is ``None``.
        """
        surface = self._venue.find_featureless_surface(location)
        if surface is None:
            return None, self._spot_photos(location, intrinsics, timestamp_s)
        target = surface.segment.midpoint
        base = self._stand_base(surface, location)
        along = surface.segment.direction

        count = self._config.tasks.annotation_photos_per_task
        photos: List[Photo] = []
        # Keep the stand arc within the target pane's span: sliding past
        # its end (e.g. into a glass corner) would put an adjacent pane
        # closer to the camera than the target itself.
        half_span = max(0.2, surface.segment.length / 2.0 - 0.3)
        spread = min(PHOTO_SPREAD_M, half_span)
        for i in range(count):
            frac = (i - (count - 1) / 2.0) / max(1, count - 1)
            stand = self._venue.nearest_traversable(base + along * (2.0 * frac * spread))
            pose = self._capture_pose(stand, target)
            yaw_offset = PHOTO_YAW_OFFSETS_DEG[i % len(PHOTO_YAW_OFFSETS_DEG)]
            pose = pose.rotated(math.radians(yaw_offset))
            photos.append(
                self._capture.take_photo(
                    pose,
                    intrinsics,
                    blur=0.04,
                    timestamp_s=timestamp_s + i,
                    source="annotation",
                    exposure_compensated=True,
                )
            )
        return surface, photos

    def collect_context_photos(
        self, location: Vec2, intrinsics: Intrinsics, timestamp_s: float = 0.0
    ) -> List[Photo]:
        """Context shots bridging the annotated frontals into the model.

        The mobile client pans away from the surface between the annotated
        frames, so the uploaded batch also contains interior views that
        register normally and share view wedges with the frontal shots.
        Without a featureless surface there is no stand arc to pan from,
        so no context shots are taken.
        """
        surface = self._venue.find_featureless_surface(location)
        if surface is None:
            return []
        target = surface.segment.midpoint
        base = self._stand_base(surface, location)
        photos: List[Photo] = []
        for i, yaw_offset in enumerate(CONTEXT_YAW_OFFSETS_DEG):
            stand = base
            pose = self._capture_pose(stand, target).rotated(math.radians(yaw_offset))
            photos.append(
                self._capture.take_photo(
                    pose,
                    intrinsics,
                    blur=0.04,
                    timestamp_s=timestamp_s + 10 + i,
                    source="annotation-context",
                    exposure_compensated=True,
                )
            )
        return photos

    def run(
        self,
        task: Task,
        pipeline: Optional[SnapTaskPipeline],
        intrinsics: Intrinsics,
        timestamp_s: float = 0.0,
    ) -> AnnotationTaskResult:
        """Execute one annotation task; updates ``pipeline`` if given."""
        self._task_counter += 1
        task_rng = self._rng.child(f"task-{self._task_counter}")

        nearest = self._venue.find_featureless_surface(task.location)
        if (
            nearest is None
            or nearest.segment.distance_to_point(task.location) > MAX_SURFACE_DISTANCE_M
        ):
            # The participant finds no smooth surface near the task spot
            # (or the venue has none at all): the stall was not caused by
            # featureless geometry. Report an empty task so the backend can
            # write the area off.
            return self._empty_result(task, nearest, pipeline, intrinsics, timestamp_s)

        surface, photos = self.collect_photos(task.location, intrinsics, timestamp_s)
        context = self.collect_context_photos(task.location, intrinsics, timestamp_s)
        processed = self._processor.process(photos)

        outcome: Optional[BatchOutcome] = None
        if pipeline is not None:
            pipeline.register_artificial_features(
                processed.imprint.all_feature_ids(),
                processed.imprint.all_feature_positions(),
            )
            outcome = pipeline.process_batch(
                list(processed.imprint.photos) + context, task
            )

        return AnnotationTaskResult(
            task=task,
            target_surface_id=surface.surface_id,
            photos=tuple(photos),
            n_annotations=processed.n_annotations,
            fused_objects=processed.objects,
            imprint=processed.imprint,
            outcome=outcome,
        )

    def _spot_photos(
        self, location: Vec2, intrinsics: Intrinsics, timestamp_s: float
    ) -> List[Photo]:
        """A rotating sweep at the task spot: the participant documents the
        area even though there is nothing to annotate."""
        return [
            self._capture.take_photo(
                self._capture_pose(
                    self._venue.nearest_traversable(location), location + Vec2(1.0, 0.0)
                ).rotated(i * 1.5),
                intrinsics,
                blur=0.04,
                timestamp_s=timestamp_s + i,
                source="annotation-empty",
            )
            for i in range(self._config.tasks.annotation_photos_per_task)
        ]

    def _empty_result(
        self,
        task: Task,
        surface: Optional[Surface],
        pipeline: Optional[SnapTaskPipeline],
        intrinsics: Intrinsics,
        timestamp_s: float,
    ) -> AnnotationTaskResult:
        """A no-op annotation outcome: photos of the spot, no annotations."""
        from .imprint import ImprintResult

        photos = self._spot_photos(task.location, intrinsics, timestamp_s)
        outcome = None
        if pipeline is not None:
            outcome = pipeline.process_batch(photos, task)
        return AnnotationTaskResult(
            task=task,
            target_surface_id=surface.surface_id if surface is not None else -1,
            photos=tuple(photos),
            n_annotations=0,
            fused_objects=(),
            imprint=ImprintResult(photos=tuple(photos), objects=()),
            outcome=outcome,
        )

    @staticmethod
    def _capture_pose(stand: Vec2, target: Vec2):
        from ..camera.pose import CameraPose

        return CameraPose(stand, (target - stand).angle())
