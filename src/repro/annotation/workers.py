"""Simulated annotation workers.

The online tool instructs workers (Sec. IV-B):

* "Please find a closest glass or other smooth surface object in the photo."
* "Mark 4 corners of the object, making sure they are on a same plane."
* "Mark the exact same 4 corners of the object in other photos."

Real workers are imprecise in two ways the fusion algorithm must survive
(Fig. 6b): corner marks carry pixel noise, and "participants may not label
the same objects in the same photo" — a fraction of workers annotate a
different (second-nearest) smooth object. Both behaviours are modelled
here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..camera.intrinsics import Intrinsics
from ..camera.photo import Photo
from ..config import AnnotationConfig
from ..geometry import PinholeProjection, Vec2
from ..simkit.rng import RngStream
from ..venue.model import Venue
from ..venue.surfaces import Surface

#: Workers cannot meaningfully annotate surfaces farther than this.
MAX_ANNOTATION_DISTANCE_M = 8.0


@dataclass(frozen=True)
class CornerAnnotation:
    """One worker's 4-corner annotation of one object in one photo."""

    photo_id: int
    worker_id: int
    corners_px: Tuple[Tuple[float, float], ...]  # 4 (u, v) pairs

    @property
    def center_px(self) -> Tuple[float, float]:
        us = [c[0] for c in self.corners_px]
        vs = [c[1] for c in self.corners_px]
        return (sum(us) / 4.0, sum(vs) / 4.0)

    def corners_array(self) -> np.ndarray:
        return np.asarray(self.corners_px, dtype=float)


def visible_featureless_surfaces(
    venue: Venue, photo: Photo, max_distance_m: float = MAX_ANNOTATION_DISTANCE_M
) -> List[Surface]:
    """Featureless surfaces a worker can see in ``photo``, nearest first.

    A surface counts as visible when its midpoint is in front of the
    camera, inside the horizontal FOV, within annotation range, and not
    occluded by an opaque surface.
    """
    pose = photo.true_pose
    intrinsics = photo.exif.intrinsics()
    half_fov = intrinsics.hfov_rad / 2.0
    candidates: List[Tuple[float, Surface]] = []
    for surface in venue.featureless_surfaces():
        mid = surface.segment.midpoint
        distance = pose.distance_to(mid)
        if distance > max_distance_m or distance < 0.2:
            continue
        if abs(pose.bearing_to(mid)) > half_fov:
            continue
        mid_z = surface.base_z + surface.height / 2.0
        visible = venue.opaque_soup.visible(
            pose.position,
            np.array([[mid.x, mid.y]]),
            target_margin=5e-3,
            origin_z=pose.height_m,
            target_z=np.array([mid_z]),
        )
        if not bool(visible[0]):
            continue
        candidates.append((distance, surface))
    candidates.sort(key=lambda pair: pair[0])
    return [surface for _, surface in candidates]


def annotate_surface(
    surface: Surface,
    photo: Photo,
    worker_id: int,
    rng: RngStream,
    corner_noise_px: float,
) -> Optional[CornerAnnotation]:
    """Project the surface's 4 corners into the photo and add worker noise.

    Off-frame corners are clamped to the image border — a worker can only
    click inside the image. Returns None when the surface is behind the
    camera in this photo.
    """
    projection = _projection_for(photo)
    corners_px: List[Tuple[float, float]] = []
    for corner in surface.corners():
        pixel = projection.project_unclamped(corner)
        if pixel is None:
            return None
        noisy = Vec2(
            pixel.x + rng.normal(0.0, corner_noise_px),
            pixel.y + rng.normal(0.0, corner_noise_px),
        )
        clamped = projection.clamp_pixel(noisy)
        corners_px.append((clamped.x, clamped.y))
    return CornerAnnotation(
        photo_id=photo.photo_id, worker_id=worker_id, corners_px=tuple(corners_px)
    )


class WorkerPool:
    """A pool of annotation workers labelling photo sets."""

    def __init__(self, venue: Venue, config: AnnotationConfig, rng: RngStream):
        self._venue = venue
        self._config = config
        self._rng = rng
        self._set_counter = 0

    def annotate_photo_set(
        self, photos: Sequence[Photo]
    ) -> Dict[int, List[CornerAnnotation]]:
        """All workers annotate the set; returns annotations per photo id.

        Each worker chooses a target object on the first photo (nearest
        smooth surface, or a wrong one at ``wrong_object_rate``) and then
        marks that same object in every photo where it is visible —
        exactly the tool's instructions, including the human failure mode.
        """
        if not photos:
            return {}
        annotations: Dict[int, List[CornerAnnotation]] = {p.photo_id: [] for p in photos}
        candidates = self._rank_candidates(photos)
        if not candidates:
            return annotations

        self._set_counter += 1
        for worker_id in range(self._config.workers_per_task):
            worker_rng = self._rng.child(f"set-{self._set_counter}/worker-{worker_id}")
            target = self._choose_target(candidates, worker_rng)
            for photo in photos:
                annotation = annotate_surface(
                    target,
                    photo,
                    worker_id,
                    worker_rng.child(f"photo-{photo.photo_id}"),
                    self._config.corner_noise_px,
                )
                if annotation is not None:
                    annotations[photo.photo_id].append(annotation)
        return annotations

    def _rank_candidates(self, photos: Sequence[Photo]) -> List[Surface]:
        """Candidate surfaces, best first.

        Workers annotate the object the photo set is obviously *about*: the
        surface framed most centrally across all photos. Ranking by mean
        |bearing| (with a penalty for photos where the surface is out of
        view) resolves glass corners where two walls are equally near but
        only one is in every frame.
        """
        visible = visible_featureless_surfaces(self._venue, photos[0])
        if not visible:
            return []

        def framing_cost(surface: Surface) -> float:
            mid = surface.segment.midpoint
            cost = 0.0
            for photo in photos:
                intrinsics = photo.exif.intrinsics()
                bearing = abs(photo.true_pose.bearing_to(mid))
                half = intrinsics.hfov_rad / 2.0
                cost += bearing if bearing <= half else half + 2.0 * (bearing - half)
            return cost / max(1, len(photos))

        return sorted(visible, key=framing_cost)

    def _choose_target(
        self, candidates: List[Surface], worker_rng: RngStream
    ) -> Surface:
        if len(candidates) > 1 and worker_rng.chance(self._config.wrong_object_rate):
            return candidates[1]
        return candidates[0]


def _projection_for(photo: Photo) -> PinholeProjection:
    intrinsics = photo.exif.intrinsics()
    return photo.true_pose.projection(intrinsics)
