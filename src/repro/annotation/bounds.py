"""Algorithm 5: "Get marked obstacle bounds".

    1: N <= {}
    2: for pSet in P:
    3:   C <= find annotation A[pSet[0]] center
    4:   center_clusters <= cluster(C)            // DBSCAN: distinct objects
    5:   for photo in pSet:
    7:     for center in center_clusters:
    8:       alpha <= A[photo] corresponding to center
    9:       obstacles[i] <= alpha
   11:     for o in obstacles:
   12:       k_sets = kmeans(o, 4)                 // 4 clusters for 4 points
   13:       corner_points = cluster(k_sets)       // DBSCAN pinpoints corners
   14:       N[photo, o] <= corner_points

"The participants may have labelled different obstacles and with variable
precision, thus, we design our algorithm to robustly detect and combine
annotations of objects inside images." Correspondence between photos uses
worker identity: a worker whose first-photo annotation falls in cluster k
is annotating object k everywhere (the tool instructs workers to mark the
exact same corners in every photo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import AnnotationConfig
from ..errors import AnnotationError
from ..simkit.rng import RngStream
from .clustering import dbscan, kmeans, largest_cluster_centroid
from .workers import CornerAnnotation


@dataclass(frozen=True)
class FusedObject:
    """One distinct annotated object with fused corners per photo."""

    object_index: int
    worker_ids: Tuple[int, ...]
    corners_by_photo: Dict[int, np.ndarray]  # photo_id -> (4, 2) pixels

    @property
    def n_photos(self) -> int:
        return len(self.corners_by_photo)


def order_corners(corners: np.ndarray) -> np.ndarray:
    """Canonical corner order: counter-clockwise from the top-left.

    k-means labels are arbitrary, but texture imprinting needs corner j of
    photo A to correspond to corner j of photo B.
    """
    corners = np.asarray(corners, dtype=float).reshape(4, 2)
    center = corners.mean(axis=0)
    angles = np.arctan2(corners[:, 1] - center[1], corners[:, 0] - center[0])
    ordered = corners[np.argsort(angles)]
    start = int(np.argmin(ordered[:, 0] + ordered[:, 1]))
    return np.roll(ordered, -start, axis=0)


def get_marked_obstacle_bounds(
    photos_order: Sequence[int],
    annotations: Dict[int, List[CornerAnnotation]],
    config: AnnotationConfig,
    rng: RngStream,
) -> List[FusedObject]:
    """Fuse one photo set's annotations into per-object corner bounds.

    ``photos_order`` is the capture order; the first photo anchors object
    identification (Algorithm 5 line 3). Objects whose first-photo cluster
    has fewer than ``dbscan_center_min_samples`` workers are rejected as
    unreliable.
    """
    if not photos_order:
        raise AnnotationError("empty photo set")
    first = annotations.get(photos_order[0], [])
    if not first:
        return []

    centers = np.array([a.center_px for a in first])
    labels = dbscan(
        centers, config.dbscan_center_eps_px, config.dbscan_center_min_samples
    )

    objects: List[FusedObject] = []
    n_clusters = int(labels.max()) + 1 if labels.size else 0
    for cluster_id in range(n_clusters):
        worker_ids = tuple(
            sorted(a.worker_id for a, lab in zip(first, labels) if lab == cluster_id)
        )
        if len(worker_ids) < config.dbscan_center_min_samples:
            continue
        corners_by_photo: Dict[int, np.ndarray] = {}
        for photo_id in photos_order:
            cluster_annotations = [
                a
                for a in annotations.get(photo_id, [])
                if a.worker_id in worker_ids
            ]
            if len(cluster_annotations) < 2:
                continue  # too little agreement to fuse this photo
            fused = _fuse_corners(cluster_annotations, config, rng.child(f"obj{cluster_id}-p{photo_id}"))
            if fused is not None:
                corners_by_photo[photo_id] = fused
        if corners_by_photo:
            objects.append(
                FusedObject(
                    object_index=len(objects),
                    worker_ids=worker_ids,
                    corners_by_photo=corners_by_photo,
                )
            )
    return objects


def _fuse_corners(
    cluster_annotations: List[CornerAnnotation],
    config: AnnotationConfig,
    rng: RngStream,
) -> Optional[np.ndarray]:
    """k-means(4) + DBSCAN pinpointing over one object's corner marks."""
    points = np.vstack([a.corners_array() for a in cluster_annotations])
    try:
        km = kmeans(points, config.kmeans_clusters, rng, config.kmeans_max_iter)
    except AnnotationError:
        return None
    corners: List[np.ndarray] = []
    for j in range(config.kmeans_clusters):
        members = points[km.labels == j]
        if members.shape[0] == 0:
            return None
        pinpointed = largest_cluster_centroid(
            members, config.dbscan_corner_eps_px, config.dbscan_corner_min_samples
        )
        corners.append(pinpointed if pinpointed is not None else members.mean(axis=0))
    return order_corners(np.vstack(corners))
