"""The artificial texture database (Algorithm 6's ``DB``).

"We then choose unique distinctive textures from an artificial texture
database to imprint on annotated images ... Since we use distinctive
colors, it is easy to locate the artificial points later on in a model, in
case they need to be analyzed separately."

Each texture owns a disjoint slice of the artificial feature-id space, so
points triangulated from texture t are identifiable in the cloud — the
"easy to locate later" property.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import AnnotationError
from ..venue.features import ARTIFICIAL_FEATURE_BASE, REFLECTION_FEATURE_BASE

#: Feature ids available to each texture.
FEATURES_PER_TEXTURE = 4096

#: Human-readable "distinctive colors" cycled across textures; purely
#: cosmetic but mirrors the paper's description and helps debugging.
_PALETTE = (
    "magenta-checker",
    "cyan-stripes",
    "orange-dots",
    "lime-grid",
    "violet-waves",
    "scarlet-maze",
    "teal-rings",
    "amber-hatch",
)


@dataclass(frozen=True)
class ArtificialTexture:
    """One distinctive texture with its reserved feature-id block."""

    texture_id: int
    name: str

    @property
    def base_feature_id(self) -> int:
        return ARTIFICIAL_FEATURE_BASE + self.texture_id * FEATURES_PER_TEXTURE

    def feature_id(self, k: int) -> int:
        """The id of this texture's k-th grid feature."""
        if not 0 <= k < FEATURES_PER_TEXTURE:
            raise AnnotationError(
                f"texture {self.texture_id}: feature index {k} out of range"
            )
        return self.base_feature_id + k

    def owns(self, feature_id: int) -> bool:
        return self.base_feature_id <= feature_id < self.base_feature_id + FEATURES_PER_TEXTURE


class TextureDatabase:
    """Hands out unique textures; never reuses one (distinctiveness)."""

    def __init__(self) -> None:
        self._counter = itertools.count(0)
        self._issued: List[ArtificialTexture] = []
        max_textures = (REFLECTION_FEATURE_BASE - ARTIFICIAL_FEATURE_BASE) // FEATURES_PER_TEXTURE
        self._max_textures = max_textures

    def next_texture(self) -> ArtificialTexture:
        texture_id = next(self._counter)
        if texture_id >= self._max_textures:
            raise AnnotationError("artificial texture id space exhausted")
        texture = ArtificialTexture(
            texture_id=texture_id,
            name=_PALETTE[texture_id % len(_PALETTE)],
        )
        self._issued.append(texture)
        return texture

    @property
    def issued(self) -> Tuple[ArtificialTexture, ...]:
        return tuple(self._issued)

    def texture_of_feature(self, feature_id: int) -> ArtificialTexture:
        """Reverse lookup: which issued texture created ``feature_id``."""
        for texture in self._issued:
            if texture.owns(feature_id):
                return texture
        raise AnnotationError(f"feature {feature_id} belongs to no issued texture")
