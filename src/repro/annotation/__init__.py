"""Featureless-surface annotation: clustering, fusion, texture imprinting."""

from .bounds import FusedObject, get_marked_obstacle_bounds, order_corners
from .clustering import (
    NOISE,
    KMeansResult,
    cluster_centroids,
    dbscan,
    kmeans,
    largest_cluster_centroid,
)
from .processor import AnnotationProcessor, ProcessedAnnotation
from .imprint import (
    ImprintResult,
    ImprintedObject,
    identify_annotated_surface,
    reconstruct_featureless_surfaces,
)
from .textures import FEATURES_PER_TEXTURE, ArtificialTexture, TextureDatabase
from .tool import AnnotationCampaign, AnnotationTaskResult
from .workers import (
    MAX_ANNOTATION_DISTANCE_M,
    CornerAnnotation,
    WorkerPool,
    annotate_surface,
    visible_featureless_surfaces,
)

__all__ = [
    "AnnotationCampaign",
    "AnnotationProcessor",
    "ProcessedAnnotation",
    "AnnotationTaskResult",
    "ArtificialTexture",
    "CornerAnnotation",
    "FEATURES_PER_TEXTURE",
    "FusedObject",
    "ImprintResult",
    "ImprintedObject",
    "KMeansResult",
    "MAX_ANNOTATION_DISTANCE_M",
    "NOISE",
    "TextureDatabase",
    "WorkerPool",
    "annotate_surface",
    "cluster_centroids",
    "dbscan",
    "get_marked_obstacle_bounds",
    "identify_annotated_surface",
    "kmeans",
    "largest_cluster_centroid",
    "order_corners",
    "reconstruct_featureless_surfaces",
    "visible_featureless_surfaces",
]
