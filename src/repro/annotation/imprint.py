"""Algorithm 6: featureless-surfaces reconstruction via texture imprinting.

    Input: photos P, annotated obstacle bounds N, SfM model M, textures DB
    1: for photo in P:
    2:   for obstacle in N[photo]:
    3:     T <= DB[i]
    4:     b <= N[photo, obstacle]
    5:     photo <= projectTextureToPhoto(T, photo, b)
    8: M' <= runSfMReconstruction(M, P)

"Since now the glass area contains enough features, the annotated area
gets reconstructed." In the simulation, projecting a distinctive texture
into the annotated image region is modelled as adding synthetic feature
observations: a grid of texture features spanning the fused annotation
quad, consistent across all photos of the set (the same physical texture
point gets the same feature id everywhere), so the SfM engine triangulates
them under its normal >= 3-view rule.

The texture grid's 3-D geometry comes from intersecting the fused corner
pixel rays with the annotated surface's plane — the surface is identified
by ray casting from the first annotated photo, which stands in for the
human knowledge of *what* was annotated. Annotation noise (including the
border clamping of off-frame corners) propagates directly into the
reconstructed extent, which is what Table I measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..camera.photo import Photo
from ..config import AnnotationConfig
from ..errors import AnnotationError
from ..geometry import PinholeProjection, Vec2, Vec3
from ..simkit.rng import RngStream
from ..venue.surfaces import Surface
from .bounds import FusedObject
from .textures import ArtificialTexture, TextureDatabase

#: Pixel noise of imprinted texture detections (same scale as real ones).
_TEXTURE_PIXEL_NOISE = 1.2


@dataclass(frozen=True)
class ImprintedObject:
    """One annotated object turned into an artificial-texture patch."""

    texture: ArtificialTexture
    surface_id: int
    quad_3d: Tuple[Vec3, Vec3, Vec3, Vec3]
    feature_ids: Tuple[int, ...]
    feature_positions: Tuple[Vec3, ...]
    photos_with_texture: Tuple[int, ...]

    @property
    def reconstructible(self) -> bool:
        """Needs >= 3 photos for the engine's 3-view triangulation rule."""
        return len(self.photos_with_texture) >= 3


@dataclass(frozen=True)
class ImprintResult:
    """Output of Algorithm 6 before the SfM re-run."""

    photos: Tuple[Photo, ...]  # imprinted copies, same photo ids
    objects: Tuple[ImprintedObject, ...]

    def all_feature_ids(self) -> List[int]:
        return [fid for obj in self.objects for fid in obj.feature_ids]

    def all_feature_positions(self) -> List[Vec3]:
        return [pos for obj in self.objects for pos in obj.feature_positions]


def identify_annotated_surface(
    photo: Photo,
    center_px: Tuple[float, float],
    candidates: Sequence[Surface],
) -> Optional[Surface]:
    """Which featureless surface does a pixel-space annotation refer to?

    Casts the pixel ray of the annotation centre and picks the nearest
    candidate plane it hits within the candidate's segment extent.
    """
    projection = _projection_for(photo)
    best: Optional[Tuple[float, Surface]] = None
    for surface in candidates:
        hit = projection.intersect_pixel_with_wall(
            Vec2(center_px[0], center_px[1]), surface.segment
        )
        if hit is None:
            continue
        distance = photo.true_pose.distance_to(Vec2(hit.x, hit.y))
        if best is None or distance < best[0]:
            best = (distance, surface)
    return best[1] if best else None


def reconstruct_featureless_surfaces(
    photos: Sequence[Photo],
    objects: Sequence[FusedObject],
    candidate_surfaces: Sequence[Surface],
    database: TextureDatabase,
    config: AnnotationConfig,
    rng: RngStream,
) -> ImprintResult:
    """Imprint one texture per fused object and return modified photos."""
    by_id: Dict[int, Photo] = {p.photo_id: p for p in photos}
    extra_ids: Dict[int, List[int]] = {pid: [] for pid in by_id}
    extra_uv: Dict[int, List[Tuple[float, float]]] = {pid: [] for pid in by_id}
    imprinted: List[ImprintedObject] = []

    for obj in objects:
        texture = database.next_texture()
        result = _imprint_object(
            obj, by_id, candidate_surfaces, texture, config,
            rng.child(f"texture-{texture.texture_id}"),
        )
        if result is None:
            continue
        imprinted_obj, per_photo_obs = result
        imprinted.append(imprinted_obj)
        for pid, (ids, uvs) in per_photo_obs.items():
            extra_ids[pid].extend(ids)
            extra_uv[pid].extend(uvs)

    out_photos: List[Photo] = []
    for pid in sorted(by_id):
        photo = by_id[pid]
        if extra_ids[pid]:
            photo = photo.with_extra_observations(
                np.asarray(extra_ids[pid], dtype=int),
                np.asarray(extra_uv[pid], dtype=float),
                suffix="imprint",
            )
        out_photos.append(photo)
    return ImprintResult(photos=tuple(out_photos), objects=tuple(imprinted))


def _imprint_object(
    obj: FusedObject,
    photos: Dict[int, Photo],
    candidates: Sequence[Surface],
    texture: ArtificialTexture,
    config: AnnotationConfig,
    rng: RngStream,
):
    """Lift one fused object to 3-D and project its texture into photos."""
    anchor_pid = min(obj.corners_by_photo)
    anchor_photo = photos[anchor_pid]
    center = obj.corners_by_photo[anchor_pid].mean(axis=0)
    surface = identify_annotated_surface(anchor_photo, (center[0], center[1]), candidates)
    if surface is None:
        return None

    quad = _fuse_quad_3d(obj, photos, surface)
    if quad is None:
        return None

    ids, positions = _texture_grid(quad, texture, config.texture_feature_spacing_m)
    if not ids:
        return None

    per_photo: Dict[int, Tuple[List[int], List[Tuple[float, float]]]] = {}
    for pid in obj.corners_by_photo:
        photo = photos[pid]
        projection = _projection_for(photo)
        obs_ids: List[int] = []
        obs_uv: List[Tuple[float, float]] = []
        pix_rng = rng.child(f"pix-{pid}")
        for fid, pos in zip(ids, positions):
            pixel = projection.project(pos)
            if pixel is None:
                continue
            obs_ids.append(fid)
            obs_uv.append(
                (
                    pixel.x + pix_rng.normal(0.0, _TEXTURE_PIXEL_NOISE),
                    pixel.y + pix_rng.normal(0.0, _TEXTURE_PIXEL_NOISE),
                )
            )
        if obs_ids:
            per_photo[pid] = (obs_ids, obs_uv)

    imprinted = ImprintedObject(
        texture=texture,
        surface_id=surface.surface_id,
        quad_3d=quad,
        feature_ids=tuple(ids),
        feature_positions=tuple(positions),
        photos_with_texture=tuple(sorted(per_photo)),
    )
    return imprinted, per_photo


def _fuse_quad_3d(
    obj: FusedObject, photos: Dict[int, Photo], surface: Surface
) -> Optional[Tuple[Vec3, Vec3, Vec3, Vec3]]:
    """Average per-photo ray/plane intersections of the 4 fused corners."""
    corner_estimates: List[List[Vec3]] = [[], [], [], []]
    for pid, corners in obj.corners_by_photo.items():
        projection = _projection_for(photos[pid])
        for j in range(4):
            hit = projection.intersect_pixel_with_wall(
                Vec2(float(corners[j, 0]), float(corners[j, 1])),
                surface.segment,
                extend_frac=0.12,
            )
            if hit is not None:
                corner_estimates[j].append(hit)
    if any(not estimates for estimates in corner_estimates):
        return None
    fused: List[Vec3] = []
    for estimates in corner_estimates:
        x = sum(e.x for e in estimates) / len(estimates)
        y = sum(e.y for e in estimates) / len(estimates)
        z = sum(e.z for e in estimates) / len(estimates)
        # The texture is painted on the physical pane: clamp height to it.
        z = min(max(z, surface.base_z), surface.top_z)
        fused.append(Vec3(x, y, z))
    return (fused[0], fused[1], fused[2], fused[3])


def _texture_grid(
    quad: Tuple[Vec3, Vec3, Vec3, Vec3],
    texture: ArtificialTexture,
    spacing_m: float,
) -> Tuple[List[int], List[Vec3]]:
    """Bilinear grid of texture features spanning the 3-D quad."""
    if spacing_m <= 0:
        raise AnnotationError("texture feature spacing must be positive")
    c0, c1, c2, c3 = quad
    width = max(c0.distance_to(c1), c3.distance_to(c2))
    height = max(c0.distance_to(c3), c1.distance_to(c2))
    n_u = max(2, int(round(width / spacing_m)) + 1)
    n_v = max(2, int(round(height / spacing_m)) + 1)

    ids: List[int] = []
    positions: List[Vec3] = []
    k = 0
    for i in range(n_u):
        a = i / (n_u - 1)
        top = c0 + (c1 - c0) * a
        bottom = c3 + (c2 - c3) * a
        for j in range(n_v):
            b = j / (n_v - 1)
            point = top + (bottom - top) * b
            try:
                ids.append(texture.feature_id(k))
            except AnnotationError:
                return ids, positions  # texture id budget exhausted
            positions.append(point)
            k += 1
    return ids, positions


def _projection_for(photo: Photo) -> PinholeProjection:
    return photo.true_pose.projection(photo.exif.intrinsics())
