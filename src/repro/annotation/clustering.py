"""Clustering primitives used by Algorithm 5: DBSCAN and k-means.

The paper fuses noisy crowd annotations with DBSCAN (Ester et al., 1996)
to separate distinct marked objects, k-means (Hartigan & Wong, 1979) to
split an object's points into 4 corner groups, and DBSCAN again to
pinpoint each corner. Both algorithms are implemented here from scratch
(scipy's cKDTree is used only for radius queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..errors import AnnotationError
from ..simkit.rng import RngStream

NOISE = -1


def dbscan(points: np.ndarray, eps: float, min_samples: int) -> np.ndarray:
    """Density-based clustering; returns a label per point (-1 = noise).

    Classic DBSCAN: core points have >= ``min_samples`` neighbours within
    ``eps`` (counting themselves); clusters grow from core points through
    density-reachable neighbours.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise AnnotationError("dbscan expects an (N, D) array")
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=int)
    if n == 0:
        return labels
    if eps <= 0 or min_samples < 1:
        raise AnnotationError("dbscan needs eps > 0 and min_samples >= 1")

    tree = cKDTree(points)
    neighbourhoods = tree.query_ball_point(points, r=eps)
    visited = np.zeros(n, dtype=bool)
    cluster = 0
    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        neighbours = neighbourhoods[i]
        if len(neighbours) < min_samples:
            continue  # stays noise unless adopted by a cluster later
        labels[i] = cluster
        seeds = list(neighbours)
        k = 0
        while k < len(seeds):
            j = seeds[k]
            k += 1
            if labels[j] == NOISE:
                labels[j] = cluster  # border point adoption
            if visited[j]:
                continue
            visited[j] = True
            labels[j] = cluster
            j_neighbours = neighbourhoods[j]
            if len(j_neighbours) >= min_samples:
                seeds.extend(j_neighbours)
        cluster += 1
    return labels


def cluster_centroids(points: np.ndarray, labels: np.ndarray) -> List[np.ndarray]:
    """Centroid of every non-noise cluster, ordered by cluster label."""
    points = np.asarray(points, dtype=float)
    centroids: List[np.ndarray] = []
    for label in range(int(labels.max()) + 1 if labels.size else 0):
        members = points[labels == label]
        if members.shape[0]:
            centroids.append(members.mean(axis=0))
    return centroids


def largest_cluster_centroid(
    points: np.ndarray, eps: float, min_samples: int
) -> Optional[np.ndarray]:
    """Centroid of the densest DBSCAN cluster, or None if all noise.

    This is Algorithm 5's corner "pinpointing": outlier corner marks fall
    out as noise and the agreeing majority defines the corner.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return None
    labels = dbscan(points, eps, min_samples)
    best_label, best_size = None, 0
    for label in range(int(labels.max()) + 1):
        size = int((labels == label).sum())
        if size > best_size:
            best_label, best_size = label, size
    if best_label is None:
        return None
    return points[labels == best_label].mean(axis=0)


@dataclass(frozen=True)
class KMeansResult:
    centroids: np.ndarray  # (k, D)
    labels: np.ndarray  # (N,)
    inertia: float
    iterations: int


def kmeans(
    points: np.ndarray,
    k: int,
    rng: RngStream,
    max_iter: int = 60,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd's k-means with k-means++-style farthest-point seeding."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n < k:
        raise AnnotationError(f"kmeans needs at least k={k} points, got {n}")

    centroids = _seed_centroids(points, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iter + 1):
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = points[labels == j]
            if members.shape[0]:
                new_centroids[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                far = int(d2.min(axis=1).argmax())
                new_centroids[j] = points[far]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tol:
            break
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(n), labels].sum())
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia, iterations=iteration)


def _seed_centroids(points: np.ndarray, k: int, rng: RngStream) -> np.ndarray:
    """First seed random, then greedily farthest from chosen seeds."""
    n = points.shape[0]
    chosen = [rng.integers(0, n)]
    for _ in range(1, k):
        d2 = np.min(
            ((points[:, None, :] - points[chosen][None, :, :]) ** 2).sum(axis=2),
            axis=1,
        )
        chosen.append(int(d2.argmax()))
    return points[chosen].astype(float).copy()
