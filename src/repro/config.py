"""Central configuration for the SnapTask reproduction.

Every constant the paper names is collected here with its published value,
so each experiment can cite a single source of truth and the ablation
benchmarks can sweep around the paper's operating point.

Paper references are given as (section, quote) pairs in the field docs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError


@dataclass(frozen=True)
class GridConfig:
    """Discretisation of the venue into map cells.

    The paper (Sec. IV): "a matrix cell size is 15 cm ... The size can be
    adjusted depending on a venue size and a required granularity -
    typically between 10cm and 50cm."
    """

    cell_size_m: float = 0.15

    def validate(self) -> None:
        if not 0.01 <= self.cell_size_m <= 1.0:
            raise ConfigError(
                f"cell_size_m={self.cell_size_m} outside sane range [0.01, 1.0]"
            )


@dataclass(frozen=True)
class SfmConfig:
    """Behaviour of the incremental SfM simulator.

    ``min_views_per_point`` mirrors the paper's COVERED_VIEW_TOLERANCE
    rationale: "SfM pipeline that we use needs at least 3 observations of a
    same point to reconstruct it in 3D space."
    """

    min_views_per_point: int = 3
    min_pair_matches: int = 40
    min_registration_matches: int = 35
    # Ratio fallback: feature-poor photos still register when nearly all
    # of their (few) features match the model — P3P needs only a handful
    # of consistent 2D-3D correspondences.
    min_ratio_matches: int = 12
    registration_inlier_ratio: float = 0.6
    # Rig registration: photos sharing an imprinted texture form a rigid
    # multi-camera rig (hundreds of mutual matches); anchoring the rig
    # needs only this many combined world matches across its photos.
    rig_texture_matches: int = 30
    min_rig_anchor_matches: int = 15
    # Viewpoint-compatible matching: descriptors only match between views
    # within this angular difference of the surface (wide-baseline feature
    # matching fails in real pipelines).
    view_compat_buckets: int = 8
    view_compat_spread: int = 1
    max_feature_range_m: float = 9.0
    min_feature_range_m: float = 0.3
    visibility_range_m: float = 5.0
    max_incidence_deg: float = 78.0
    base_detection_prob: float = 0.92
    range_falloff: float = 0.05
    point_noise_sigma_m: float = 0.03
    point_noise_range_gain: float = 0.006
    camera_pose_noise_m: float = 0.05
    camera_yaw_noise_deg: float = 0.8
    sor_neighbors: int = 8
    sor_std_ratio: float = 2.0
    reflection_noise_rate: float = 0.015
    # Backlight: indoor photos dominated by bright glass/windows lose
    # contrast; feature detection drops as glass fills the frame.
    backlight_strength: float = 0.95

    def validate(self) -> None:
        if self.min_views_per_point < 2:
            raise ConfigError("SfM needs at least 2 views to triangulate")
        if not 0.0 < self.base_detection_prob <= 1.0:
            raise ConfigError("base_detection_prob must be in (0, 1]")
        if self.min_feature_range_m >= self.max_feature_range_m:
            raise ConfigError("min_feature_range_m must be < max_feature_range_m")


@dataclass(frozen=True)
class CameraConfig:
    """Smartphone camera model used by all capture simulators."""

    hfov_deg: float = 66.0
    image_width_px: int = 4032
    image_height_px: int = 3024
    height_m: float = 1.5
    patch_size_px: int = 24

    @property
    def hfov_rad(self) -> float:
        return math.radians(self.hfov_deg)

    @property
    def focal_length_px(self) -> float:
        """Pin-hole focal length implied by the horizontal FOV."""
        return (self.image_width_px / 2.0) / math.tan(self.hfov_rad / 2.0)

    def validate(self) -> None:
        if not 10.0 <= self.hfov_deg <= 170.0:
            raise ConfigError(f"hfov_deg={self.hfov_deg} is not a camera FOV")
        if self.image_width_px <= 0 or self.image_height_px <= 0:
            raise ConfigError("image dimensions must be positive")


@dataclass(frozen=True)
class TaskConfig:
    """Task generation constants from Algorithm 1 / 4 (Sec. IV)."""

    obstacle_threshold: int = 4
    covered_view_tolerance: int = 3
    min_area_size_m2: float = 2.25
    # findUnvisited grows a region up to this multiple of MIN_AREA_SIZE
    # before placing the task at its centre; larger values place tasks
    # deeper inside unknown territory (fewer, bigger steps).
    area_expansion_factor: int = 8
    max_tasks: int = 1
    annotation_trigger_attempts: int = 2  # "TT = 2"
    # A failing location is annotated up to this many times before the
    # backend writes its area off as unmappable.
    max_annotations_per_location: int = 2
    # "coverage > C" with tolerance: growth below this many cells (~0.6 m^2)
    # is map jitter, not progress, and counts as a failed attempt.
    min_growth_cells: int = 25
    # "did not contribute in growing the 3D model": a batch must also add
    # at least this many new 3-D points to count as progress.
    min_new_points: int = 60
    low_quality_laplacian: float = 0.45
    capture_step_deg: float = 8.0
    # "The phone simultaneously sends the captured images to a cloud
    # server": a 360-degree capture streams up in sub-batches, each
    # processed by Algorithm 1 on arrival. Stalls therefore surface within
    # a single task rather than across repeated tasks.
    upload_subbatch: int = 45
    annotation_photos_per_task: int = 4  # "we set T = 4"

    def validate(self) -> None:
        if self.obstacle_threshold < 1:
            raise ConfigError("obstacle_threshold must be >= 1")
        if self.covered_view_tolerance < 1:
            raise ConfigError("covered_view_tolerance must be >= 1")
        if self.min_area_size_m2 <= 0:
            raise ConfigError("min_area_size_m2 must be positive")
        if not 1.0 <= self.capture_step_deg <= 120.0:
            raise ConfigError("capture_step_deg outside sane range")


@dataclass(frozen=True)
class AnnotationConfig:
    """Featureless-surface annotation fusion (Algorithms 5 & 6)."""

    workers_per_task: int = 15
    corner_noise_px: float = 45.0
    wrong_object_rate: float = 0.25
    dbscan_center_eps_px: float = 260.0
    dbscan_center_min_samples: int = 3
    dbscan_corner_eps_px: float = 120.0
    dbscan_corner_min_samples: int = 3
    kmeans_clusters: int = 4  # "using 4 clusters for 4 points"
    kmeans_max_iter: int = 60
    texture_feature_spacing_m: float = 0.12

    def validate(self) -> None:
        if self.kmeans_clusters != 4:
            raise ConfigError("Algorithm 5 fuses exactly 4 corner points")
        if self.workers_per_task < 1:
            raise ConfigError("need at least one annotation worker")


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation constants (Sec. V)."""

    bounds_merge_threshold_m: float = 0.15  # "threshold to T = 0.15m"
    photos_per_split: int = 100  # "divided corresponding photo sets into 7 parts"
    video_sharpness_window: int = 30  # "window size of 30"

    def validate(self) -> None:
        if self.bounds_merge_threshold_m <= 0:
            raise ConfigError("bounds_merge_threshold_m must be positive")


@dataclass(frozen=True)
class NavigationConfig:
    """Indoor positioning / AR navigation error model (Sec. V-B3).

    "the user reaches task location using our indoor positioning system
    that has up to 1 meter positioning error."
    """

    positioning_error_m: float = 1.0
    localization_min_matches: int = 12

    def validate(self) -> None:
        if self.positioning_error_m < 0:
            raise ConfigError("positioning_error_m cannot be negative")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded network fault injection (off by default).

    The paper's deployment runs on real phones over real Wi-Fi (Sec. III);
    this models the failure modes that implies: message loss, duplicate
    delivery (retransmission at a lower layer), latency jitter, and
    client radio disconnect windows. All draws come from a named
    :class:`~repro.simkit.rng.RngStream`, so fault patterns are
    reproducible. A default-constructed ``FaultConfig`` is a no-op and
    leaves the channel byte-for-byte identical to the lossless model.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_s: float = 0.0
    #: Half-open ``(start_s, end_s)`` simulated-time windows during which
    #: the channel is disconnected: messages sent inside a window are lost.
    disconnect_windows: Tuple[Tuple[float, float], ...] = ()
    #: Seeded backend crash schedule: ``(at_s, downtime_s)`` pairs. At
    #: ``at_s`` the backend process dies (in-flight work lost, messages
    #: during downtime dropped) and restarts ``downtime_s`` later by
    #: recovering from its snapshot + WAL. Requires persistence to be
    #: enabled. Deliberately *not* part of :attr:`enabled` — that flag
    #: gates per-link RNG creation and crashes are not a link fault.
    backend_crashes: Tuple[Tuple[float, float], ...] = ()

    @property
    def enabled(self) -> bool:
        """True when any link-fault mechanism can fire."""
        return (
            self.drop_probability > 0.0
            or self.duplicate_probability > 0.0
            or self.jitter_s > 0.0
            or bool(self.disconnect_windows)
        )

    def in_disconnect(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside a configured disconnect window."""
        return any(start <= time_s < end for start, end in self.disconnect_windows)

    def validate(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ConfigError("duplicate_probability must be in [0, 1)")
        if self.jitter_s < 0:
            raise ConfigError("jitter_s cannot be negative")
        for window in self.disconnect_windows:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise ConfigError(f"bad disconnect window {window!r}")
        for crash in self.backend_crashes:
            if len(crash) != 2 or crash[0] < 0 or crash[1] <= 0:
                raise ConfigError(f"bad backend crash {crash!r}")


@dataclass(frozen=True)
class NetworkConfig:
    """Simulated mobile-client/backend network channel."""

    latency_s: float = 0.05
    bandwidth_mbps: float = 20.0
    photo_size_mb: float = 2.5
    faults: FaultConfig = field(default_factory=FaultConfig)

    def validate(self) -> None:
        if self.latency_s < 0 or self.bandwidth_mbps <= 0:
            raise ConfigError("invalid network parameters")
        self.faults.validate()


@dataclass(frozen=True)
class BackendConfig:
    """The backend's SfM processing lane (bounded workers + admission).

    The paper names SfM compute the system bottleneck (Sec. II-A); this
    section makes the bottleneck explicit instead of modelling it away.
    ``sfm_workers=None`` keeps the legacy *infinite-server* model — every
    uploaded batch gets a dedicated simulated worker — and is byte-for-
    byte identical to the pre-queueing traces. A bounded pool serves
    batches FIFO from an admission queue (completion = queue wait +
    deterministic service time, an M/D/c-style lane), and a bounded
    ``queue_limit`` turns the lane into an admission controller: batches
    arriving past the bound are *shed* with a ``retry_after_s`` hint
    instead of queued.
    """

    #: Parallel SfM workers; ``None`` = infinite (legacy model).
    sfm_workers: Optional[int] = None
    #: Max batches waiting for a worker; ``None`` = unbounded queue.
    #: ``0`` sheds whenever every worker is busy. Requires a bounded pool.
    queue_limit: Optional[int] = None
    #: Lower bound for the ``retry_after_s`` hint on shed uploads.
    retry_after_floor_s: float = 1.0

    def validate(self) -> None:
        if self.sfm_workers is not None and self.sfm_workers < 1:
            raise ConfigError(f"sfm_workers={self.sfm_workers} must be >= 1 or None")
        if self.queue_limit is not None:
            if self.queue_limit < 0:
                raise ConfigError(f"queue_limit={self.queue_limit} cannot be negative")
            if self.sfm_workers is None:
                raise ConfigError(
                    "queue_limit requires a bounded pool (sfm_workers is None)"
                )
        if self.retry_after_floor_s <= 0:
            raise ConfigError("retry_after_floor_s must be positive")


@dataclass(frozen=True)
class ProtocolConfig:
    """Fault-tolerant crowd-protocol parameters (leases + retries).

    Crowd workers abandon assigned tasks at a measurable rate
    (arXiv:1901.09264), so an assignment is a *lease*: if the photos do
    not arrive before ``lease_duration_s`` of simulated time, the backend
    reaps the lease and requeues the task. Clients retransmit un-ACKed
    requests and uploads with exponential backoff. The baseline
    deployment's worst observed assignment-to-completion latency is
    ~122 s, so the default lease leaves generous headroom for retries.
    """

    lease_duration_s: float = 600.0
    #: Cadence for explicit :meth:`BackendServer.reap_expired` sweeps;
    #: the event-driven reaper fires exactly at each lease expiry, so this
    #: only paces external/manual sweeps.
    reaper_interval_s: float = 60.0
    rto_initial_s: float = 4.0
    rto_backoff: float = 2.0
    rto_max_s: float = 60.0
    max_retries: int = 8
    #: Idle-client re-poll cadence when the backend has no work yet.
    poll_interval_s: float = 5.0
    #: Seeded uniform jitter added to each poll wait. ``0`` (the default)
    #: keeps polls on the bare cadence — and the event trace unchanged —
    #: but synchronises idle clients into a polling herd; any positive
    #: value decorrelates them deterministically (per-client RNG stream).
    poll_jitter_s: float = 0.0
    #: How long the dedup ledgers keep an entry after its owning task
    #: reaches a terminal state. Old entries are archived to the store
    #: (late duplicates still re-ACK safely) and evicted, bounding ledger
    #: memory over a long campaign.
    ledger_retention_s: float = 600.0
    #: How long an archived batch outcome survives *after* its ledger
    #: eviction before the archive GC drops it. The total duplicate-safe
    #: horizon for a batch id is therefore ``ledger_retention_s +
    #: archive_retention_s`` past task completion — far beyond the
    #: retransmission machinery's maximum backoff.
    archive_retention_s: float = 1800.0

    def timeout_for(self, attempt: int, floor_s: float = 0.0) -> float:
        """Retransmission timeout for the ``attempt``-th send (0-based).

        ``floor_s`` is a deterministic lower bound covering the expected
        ACK round trip (transfer + server processing); the exponential
        term backs off on top of it, capped at ``rto_max_s``.
        """
        if attempt < 0:
            raise ConfigError(f"attempt must be >= 0, got {attempt}")
        return floor_s + min(self.rto_initial_s * self.rto_backoff ** attempt, self.rto_max_s)

    def validate(self) -> None:
        if self.lease_duration_s <= 0:
            raise ConfigError("lease_duration_s must be positive")
        if self.reaper_interval_s <= 0:
            raise ConfigError("reaper_interval_s must be positive")
        if self.rto_initial_s <= 0 or self.rto_max_s < self.rto_initial_s:
            raise ConfigError("need 0 < rto_initial_s <= rto_max_s")
        if self.rto_backoff < 1.0:
            raise ConfigError("rto_backoff must be >= 1")
        if self.max_retries < 0:
            raise ConfigError("max_retries cannot be negative")
        if self.poll_interval_s <= 0:
            raise ConfigError("poll_interval_s must be positive")
        if self.poll_jitter_s < 0:
            raise ConfigError("poll_jitter_s cannot be negative")
        if self.ledger_retention_s <= 0:
            raise ConfigError("ledger_retention_s must be positive")
        if self.archive_retention_s <= 0:
            raise ConfigError("archive_retention_s must be positive")


@dataclass(frozen=True)
class PersistConfig:
    """Backend durability: write-ahead log + snapshot checkpointing.

    Off by default — the lossless baseline trace must stay byte-for-byte
    identical. When enabled, every state-mutating handler outcome is
    appended to a WAL at its commit point and the whole backend state is
    checkpointed every ``snapshot_every_batches`` committed photo
    batches (checkpoints are cheap: the SfM model's frozen columns and
    the immutable feature world are structurally shared). Recovery after
    a crash restores the latest snapshot and replays the WAL suffix.
    """

    enabled: bool = False
    #: Checkpoint cadence in committed photo batches. ``1`` snapshots on
    #: every commit (shortest replay, most copying); larger values trade
    #: replay length for checkpoint work.
    snapshot_every_batches: int = 8
    #: Re-run recovery twice and cross-check the recovered-state digests
    #: (idempotence audit). Cheap relative to a crash; on by default.
    audit_recovery: bool = True
    #: Checkpoint generations retained (newest N, plus genesis which is
    #: never pruned). More generations give the recovery ladder deeper
    #: fallback rungs when storage faults damage the newest image(s).
    snapshot_retain: int = 3
    #: Seeded storage damage applied to the durable media at crash
    #: instants (:class:`repro.persist.faults.StorageFaultConfig`);
    #: ``None`` = pristine media (the pre-fault-model behaviour).
    storage_faults: Optional["StorageFaultConfig"] = None

    def validate(self) -> None:
        if self.snapshot_every_batches < 1:
            raise ConfigError("snapshot_every_batches must be >= 1")
        if self.snapshot_retain < 1:
            raise ConfigError("snapshot_retain must be >= 1")
        if self.storage_faults is not None:
            self.storage_faults.validate()


@dataclass(frozen=True)
class SnapTaskConfig:
    """Aggregated configuration for a full SnapTask deployment."""

    grid: GridConfig = field(default_factory=GridConfig)
    sfm: SfmConfig = field(default_factory=SfmConfig)
    camera: CameraConfig = field(default_factory=CameraConfig)
    tasks: TaskConfig = field(default_factory=TaskConfig)
    annotation: AnnotationConfig = field(default_factory=AnnotationConfig)
    eval: EvalConfig = field(default_factory=EvalConfig)
    nav: NavigationConfig = field(default_factory=NavigationConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    persist: PersistConfig = field(default_factory=PersistConfig)
    seed: int = 2018

    def validate(self) -> "SnapTaskConfig":
        """Validate every section and return self for chaining."""
        for section in (
            self.grid,
            self.sfm,
            self.camera,
            self.tasks,
            self.annotation,
            self.eval,
            self.nav,
            self.network,
            self.protocol,
            self.backend,
            self.persist,
        ):
            section.validate()
        return self

    def with_cell_size(self, cell_size_m: float) -> "SnapTaskConfig":
        """Return a copy with a different map cell size (ablation helper)."""
        return replace(self, grid=replace(self.grid, cell_size_m=cell_size_m))

    def with_seed(self, seed: int) -> "SnapTaskConfig":
        """Return a copy with a different master RNG seed."""
        return replace(self, seed=seed)

    def with_backend(
        self,
        sfm_workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        retry_after_floor_s: Optional[float] = None,
    ) -> "SnapTaskConfig":
        """Return a copy with a different SfM processing-lane shape."""
        floor = (
            retry_after_floor_s
            if retry_after_floor_s is not None
            else self.backend.retry_after_floor_s
        )
        return replace(
            self,
            backend=BackendConfig(
                sfm_workers=sfm_workers,
                queue_limit=queue_limit,
                retry_after_floor_s=floor,
            ),
        )

    def with_persistence(
        self,
        snapshot_every_batches: int = 8,
        audit_recovery: bool = True,
        snapshot_retain: int = 3,
        storage_faults: Optional["StorageFaultConfig"] = None,
    ) -> "SnapTaskConfig":
        """Return a copy with backend durability (WAL + snapshots) on."""
        return replace(
            self,
            persist=PersistConfig(
                enabled=True,
                snapshot_every_batches=snapshot_every_batches,
                audit_recovery=audit_recovery,
                snapshot_retain=snapshot_retain,
                storage_faults=storage_faults,
            ),
        )

    @property
    def sfm_workers(self) -> Optional[int]:
        """The backend's SfM worker count (``None`` = infinite-server)."""
        return self.backend.sfm_workers

    @property
    def min_area_cells(self) -> int:
        """MIN_AREA_SIZE expressed in grid cells for the configured cell size."""
        cell_area = self.grid.cell_size_m ** 2
        return max(1, int(round(self.tasks.min_area_size_m2 / cell_area)))


DEFAULT_CONFIG = SnapTaskConfig().validate()


def paper_config(seed: int = 2018) -> SnapTaskConfig:
    """The configuration matching the paper's published operating point."""
    return SnapTaskConfig(seed=seed).validate()
