"""Exception hierarchy for the SnapTask reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate segment, empty polygon, ...)."""


class VenueError(ReproError):
    """Inconsistent venue definition (unclosed outer wall, bad material, ...)."""


class CaptureError(ReproError):
    """A photo could not be captured (camera outside venue, bad intrinsics)."""


class ReconstructionError(ReproError):
    """The SfM simulator was asked to do something impossible."""


class RegistrationError(ReconstructionError):
    """A photo or batch could not be registered into the model."""


class MappingError(ReproError):
    """Grid/map construction failure (mismatched extents, empty cloud, ...)."""


class TaskGenerationError(ReproError):
    """Task generation was invoked with inconsistent state."""


class AnnotationError(ReproError):
    """Annotation fusion failed (no annotations, degenerate clusters, ...)."""


class SimulationError(ReproError):
    """Discrete-event simulation kernel misuse (time travel, dead handler)."""


class ProtocolError(ReproError):
    """Client/server message exchange violated the SnapTask protocol."""


class LeaseError(ProtocolError):
    """Task-lease bookkeeping misuse (double lease, reaping a live lease)."""


class ConfigError(ReproError):
    """A configuration value is out of its documented range."""


class ObservabilityError(ReproError):
    """Telemetry misuse (metric type clash, bad span lifecycle, bad export)."""


class PersistenceError(ReproError):
    """Durability subsystem failure (bad WAL frame, recovery misuse)."""


class UnrecoverableStateError(PersistenceError):
    """Every snapshot generation failed verification; recovery fails closed.

    Carries a structured ``report`` dict (quarantined generations with
    damage reasons and byte counts, plus WAL condition) so operators and
    the DST harness can distinguish a correct fail-closed outcome from a
    recovery bug.
    """

    def __init__(self, message: str, report: dict) -> None:
        super().__init__(message)
        self.report = report


class BackendUnavailableError(ProtocolError):
    """The backend is down (crashed, not yet recovered); message is lost."""
