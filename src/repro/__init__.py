"""repro — a full reproduction of SnapTask (ICDCS 2018).

SnapTask is a guided visual-crowdsourcing system for building complete
indoor maps: it reconstructs 3-D models from crowdsourced photos with
Structure-from-Motion, converts them into obstacle/visibility maps, and
generates photo-collection and annotation tasks exactly where the map is
still incomplete.

This package implements the paper's full pipeline plus every substrate it
depends on (venue/world simulation, camera capture, an SfM simulator,
OctoMap-style mapping, clustering, crowd behaviour models, an event-driven
client/server layer) and the benchmark harness that regenerates every
table and figure of the evaluation. See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

from .config import DEFAULT_CONFIG, SnapTaskConfig, paper_config
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["DEFAULT_CONFIG", "ReproError", "SnapTaskConfig", "paper_config", "__version__"]
