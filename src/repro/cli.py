"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — describe the library replica venue
* ``guided``    — run the guided SnapTask campaign and print the series
* ``compare``   — the full three-way field test (Figs. 11-12 data)
* ``deploy``    — the client/server deployment simulation
* ``export``    — run a guided campaign and export the floor plan
                   (PGM + JSON)
* ``trace``     — run the deployment with telemetry enabled and dump
                   ``trace.json`` (Perfetto), ``metrics.json`` and
                   ``BENCH_pipeline.json``
* ``fuzz``      — deterministic simulation-testing campaigns: seeded
                   random scenarios under the live invariant registry,
                   with failing-seed shrinking and replayable artifacts
                   (``--crashes`` forces backend crash-restarts)
* ``recover``   — crash the backend mid-deployment, recover it from
                   WAL + snapshot, and diff the converged campaign
                   against its crash-free twin
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .config import paper_config


def _make_bench(seed: int):
    from .eval import Workbench

    return Workbench.for_library(paper_config(seed=seed))


def cmd_info(args: argparse.Namespace) -> int:
    bench = _make_bench(args.seed)
    print(bench.venue.describe())
    print(f"grid: {bench.spec.n_rows} x {bench.spec.n_cols} cells of "
          f"{bench.spec.cell_size_m * 100:.0f} cm")
    print(f"world features: {len(bench.world)}")
    print(f"ground-truth region cells: {bench.ground_truth.region_cells}")
    print(f"outer bounds: {bench.ground_truth.outer_bounds_m:.2f} m")
    return 0


def cmd_guided(args: argparse.Namespace) -> int:
    from .eval import run_guided_experiment
    from .eval.reporting import format_series_rows, format_table1
    from .mapping import render_ascii

    bench = _make_bench(args.seed)
    result = run_guided_experiment(bench, max_tasks=args.max_tasks)
    print(format_series_rows(result.series))
    print()
    print(format_table1(result.featureless))
    print()
    print(f"venue covered: {result.run.venue_covered}; "
          f"{result.n_photo_tasks} photo + {result.n_annotation_tasks} annotation tasks")
    if args.map:
        print(render_ascii(result.final_maps, bench.ground_truth.region_mask, max_width=100))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .eval import (
        format_final_comparison,
        run_guided_experiment,
        run_opportunistic_experiment,
        run_unguided_experiment,
    )

    guided = run_guided_experiment(_make_bench(args.seed), max_tasks=args.max_tasks)
    unguided = run_unguided_experiment(_make_bench(args.seed))
    opportunistic = run_opportunistic_experiment(_make_bench(args.seed))
    print(
        format_final_comparison(
            [
                ("SnapTask", guided.final),
                ("Unguided participatory", unguided.series.final),
                ("Opportunistic", opportunistic.series.final),
            ],
            paper_values={
                "SnapTask": "98.12%",
                "unguided": "77.4%",
                "opportunistic": "63.67%",
            },
        )
    )
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    from .server import Deployment

    bench = _make_bench(args.seed)
    deployment = Deployment(bench, n_clients=args.clients)
    report = deployment.run(until_s=args.until)
    print(f"venue covered: {report.venue_covered}")
    print(f"simulated time: {report.sim_time_s:.0f} s; events: {report.events_processed}")
    print(f"tasks: {report.tasks_completed}; photos: {report.photos_uploaded}; "
          f"traffic: {report.total_traffic_mb:.0f} MB")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Telemetry
    from .obs.bench import write_bench_pipeline
    from .obs.export import write_chrome_trace, write_metrics_json
    from .server import Deployment

    bench = _make_bench(args.seed)
    telemetry = Telemetry.enable()
    deployment = Deployment(bench, n_clients=args.clients, telemetry=telemetry)
    report = deployment.run(until_s=args.until)
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(
        telemetry.tracer, out / "trace.json", metrics=telemetry.metrics
    )
    metrics_path = write_metrics_json(telemetry.metrics, out / "metrics.json")
    bench_path = write_bench_pipeline(
        out / "BENCH_pipeline.json",
        telemetry.metrics,
        campaign={
            "command": "trace",
            "seed": args.seed,
            "clients": args.clients,
            "until_s": args.until,
            "sim_time_s": report.sim_time_s,
            "events_processed": report.events_processed,
            "tasks_completed": report.tasks_completed,
            "venue_covered": report.venue_covered,
        },
    )
    tracer = telemetry.tracer
    print(f"simulated {report.sim_time_s:.0f} s, {report.events_processed} events, "
          f"{report.tasks_completed} tasks")
    print(f"spans recorded: {tracer.finished_count} (dropped: {tracer.dropped_spans})")
    print(f"wrote {trace_path} (load it at https://ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    print(f"wrote {bench_path}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .eval import run_guided_experiment
    from .mapping.export import floorplan_to_json, floorplan_to_pgm

    bench = _make_bench(args.seed)
    result = run_guided_experiment(bench, max_tasks=args.max_tasks)
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    pgm = floorplan_to_pgm(
        result.final_maps, out / "floorplan.pgm", bench.ground_truth.region_mask
    )
    meta = floorplan_to_json(
        result.final_maps, out / "floorplan.json", venue_name=bench.venue.name
    )
    print(f"wrote {pgm} and {meta}")
    print(f"coverage: {result.final.coverage_percent:.2f}%  "
          f"bounds: {result.final.bounds_percent:.2f}%")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .testkit import MUTATIONS, load_artifact, replay_artifact, run_fuzz

    if args.replay:
        doc = load_artifact(args.replay)
        print(f"replaying {args.replay} (recorded failure: {doc['failure']})")
        result = replay_artifact(doc, check_determinism=not args.no_determinism)
        print(f"replay outcome: {result.label}")
        if result.violation is not None:
            print(f"  {result.violation}")
        if result.crash is not None:
            print(f"  {result.crash}")
        if result.determinism_detail is not None:
            print(f"  {result.determinism_detail}")
        if result.label == doc["failure"]:
            print("failure reproduced")
            return 1
        print("failure did NOT reproduce (fixed, or environment drift)")
        return 0

    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(f"unknown mutation {args.mutate!r}; available: {sorted(MUTATIONS)}")
        return 2

    summary = run_fuzz(
        campaigns=args.campaigns,
        master_seed=args.seed,
        mutation=args.mutate,
        shrink=not args.no_shrink,
        check_determinism=not args.no_determinism,
        scratch_twin_every=args.scratch_twin_every,
        crashes=args.crashes,
        storage_faults=args.storage_faults,
        artifact_dir=args.artifacts,
        max_failures=args.max_failures,
        progress=print,
        jobs=args.jobs,
    )
    ran = summary.passed + len(summary.failures)
    print(
        f"\n{ran} campaigns: {summary.passed} ok, {len(summary.failures)} failed "
        f"({summary.checks_run} invariant checks, "
        f"{summary.checkpoints_run} oracle checkpoints)"
    )
    for label, count in sorted(summary.labels.items()):
        print(f"  {label}: {count}")
    for failure in summary.failures:
        print(f"\nfailing seed {failure.result.scenario.seed}: {failure.result.label}")
        print(f"  scenario: {failure.result.scenario.describe()}")
        if failure.shrink_steps:
            print(
                f"  shrunk in {failure.shrink_runs} runs: "
                f"{', '.join(failure.shrink_steps)}"
            )
        if failure.result.violation is not None:
            print(f"  {failure.result.violation}")
        if failure.result.crash is not None:
            print(f"  crash: {failure.result.crash}")
        if failure.result.determinism_detail is not None:
            print(f"  {failure.result.determinism_detail}")
        if failure.artifact_path is not None:
            print(f"  artifact: {failure.artifact_path}")
    if args.mutate is not None:
        expected = f"invariant:{MUTATIONS[args.mutate].expected_invariant}"
        caught = any(f.result.label == expected for f in summary.failures)
        print(
            f"\nmutation {args.mutate!r}: "
            + (f"caught by {expected}" if caught else f"NOT caught (want {expected})")
        )
        # In mutation mode the *failure* is the success condition.
        return 0 if caught else 1
    return 0 if summary.ok else 1


def cmd_recover(args: argparse.Namespace) -> int:
    from .testkit.executor import EXECUTOR_TASKS, resolve_jobs, run_shards

    # Both legs — the crashed run and its crash-free twin — are computed
    # first (inline, or concurrently on the executor pool with --jobs 2)
    # and printed from their payload dicts afterwards, so the output is
    # byte-identical regardless of --jobs.
    crashed_spec = {
        "crashed": True,
        "seed": args.seed,
        "snapshot_every": args.snapshot_every,
        "snapshot_retain": args.snapshot_retain,
        "crash_at": args.crash_at,
        "downtime": args.downtime,
        "clients": args.clients,
        "until": args.until,
    }
    if args.storage_faults:
        # Deterministic degraded recovery: corrupt exactly the newest
        # snapshot generation at the crash (probability 1, cascade cap
        # 1), forcing the ladder to quarantine it and fall back to an
        # older verified generation with a longer WAL replay. The WAL
        # itself stays intact, so the recovered campaign must still
        # converge byte-identically to the crash-free twin.
        crashed_spec["storage_faults"] = {
            "snapshot_corruption": 1.0,
            "max_damaged_generations": 1,
        }
    specs = [
        crashed_spec,
        {
            "crashed": False,
            "seed": args.seed,
            "clients": args.clients,
            "until": args.until,
        },
    ]
    if resolve_jobs(args.jobs) >= 2:
        envelopes = list(run_shards("recover-run", specs, jobs=2))
        failed = [env for env in envelopes if not env["ok"]]
        if failed:
            print(f"recover worker failed: {failed[0].get('error', 'unknown')}")
            return 2
        crashed, twin = (env["payload"] for env in envelopes)
    else:
        run = EXECUTOR_TASKS["recover-run"]
        crashed, twin = run(specs[0]), run(specs[1])

    report = crashed["report"]
    print(
        f"crashed run: covered={report['venue_covered']} "
        f"sim_time={report['sim_time_s']:.0f} s"
    )
    print(
        f"  crashes: {report['backend_crashes']}  recoveries: {report['backend_recoveries']}  "
        f"wal records: {report['wal_records']}  snapshots: {report['snapshots_taken']}"
    )
    for i, damage in enumerate(crashed.get("storage", [])):
        if damage["damaged_snapshot_seqs"] or damage["wal_torn"] or (
            damage["wal_dropped_records"]
        ):
            print(
                f"  crash #{i} storage damage: "
                f"snapshots {damage['damaged_snapshot_seqs']} "
                f"({', '.join(damage['damage_modes']) or 'none'}), "
                f"wal torn={damage['wal_torn']} "
                f"dropped={damage['wal_dropped_records']}"
            )
    audits_ok = True
    saw_fallback = False
    for i, rec in enumerate(crashed["audits"]):
        ok = rec["audit_ok"]
        audits_ok = audits_ok and ok
        saw_fallback = saw_fallback or rec["fallback"]
        ladder = ""
        if rec["fallback"] or rec["quarantined_seqs"]:
            ladder = (
                f", tried {rec['generations_tried']} generations, "
                f"quarantined {rec['quarantined_seqs']} "
                f"({rec['quarantined_bytes']} seal bytes)"
            )
        print(
            f"  recovery #{i}: snapshot seq {rec['snapshot_seq']}, "
            f"replayed {rec['replayed_records']} records, "
            f"dropped {rec['dropped_remnants']} remnants, "
            f"re-armed {rec['armed_leases']} leases, "
            f"audit {'ok' if ok else 'MISMATCH'}{ladder}"
        )
    if args.storage_faults and not saw_fallback:
        print("storage faults armed but no recovery fell back a generation")
        return 1

    # The crash-free twin: same seed, no crash, persistence off — the
    # plain pre-durability deployment recovery must converge to exactly.
    twin_report = twin["report"]
    print(f"crash-free twin: covered={twin_report['venue_covered']}")
    if not (report["venue_covered"] and twin_report["venue_covered"]):
        print("one run ended mid-campaign; raise --until to compare converged state")
        return 0 if audits_ok else 1
    diffs = [
        f"  {name}: crashed={report[name]} crash-free={twin_report[name]}"
        for name in ("coverage_cells", "tasks_completed", "tasks_failed", "photos_uploaded")
        if report[name] != twin_report[name]
    ]
    if diffs:
        print("DIVERGED from the crash-free twin:")
        print("\n".join(diffs))
        return 1
    print(
        f"converged identically: coverage_cells={report['coverage_cells']} "
        f"tasks_completed={report['tasks_completed']} "
        f"photos_uploaded={report['photos_uploaded']}"
    )
    return 0 if audits_ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SnapTask (ICDCS 2018) reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=2018, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the library replica")

    p_guided = sub.add_parser("guided", help="run the guided campaign")
    p_guided.add_argument("--max-tasks", type=int, default=120)
    p_guided.add_argument("--map", action="store_true", help="print the ASCII floor plan")

    p_compare = sub.add_parser("compare", help="guided vs unguided vs opportunistic")
    p_compare.add_argument("--max-tasks", type=int, default=120)

    p_deploy = sub.add_parser("deploy", help="client/server deployment simulation")
    p_deploy.add_argument("--clients", type=int, default=3)
    p_deploy.add_argument("--until", type=float, default=40_000.0)

    p_export = sub.add_parser("export", help="export the floor plan (PGM + JSON)")
    p_export.add_argument("--max-tasks", type=int, default=120)
    p_export.add_argument("--output", default="floorplan-out")

    p_trace = sub.add_parser(
        "trace", help="run the deployment with telemetry on; dump trace + metrics"
    )
    p_trace.add_argument("--clients", type=int, default=3)
    p_trace.add_argument("--until", type=float, default=20_000.0)
    p_trace.add_argument("--output", default="obs-out")

    p_fuzz = sub.add_parser(
        "fuzz", help="deterministic simulation-testing campaigns (DST)"
    )
    p_fuzz.add_argument("--campaigns", type=int, default=20)
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="master fuzz seed (campaign seeds derive)"
    )
    p_fuzz.add_argument(
        "--mutate",
        default=None,
        help="run under a planted bug; the fuzz succeeds iff an invariant catches it",
    )
    p_fuzz.add_argument(
        "--artifacts",
        default=None,
        help="directory for failing-seed artifacts (written on failure)",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        help="re-run a failing-seed artifact instead of fuzzing",
    )
    p_fuzz.add_argument(
        "--scratch-twin-every",
        type=int,
        default=0,
        help="diff every N-th campaign against its full_rebuild=True twin",
    )
    p_fuzz.add_argument(
        "--crashes",
        action="store_true",
        help="force a seeded backend crash-restart schedule onto every campaign",
    )
    p_fuzz.add_argument(
        "--storage-faults",
        action="store_true",
        help="also arm seeded storage damage (torn WAL tails, dropped "
        "flushes, snapshot corruption) at every forced crash",
    )
    p_fuzz.add_argument("--max-failures", type=int, default=3)
    p_fuzz.add_argument("--no-shrink", action="store_true")
    p_fuzz.add_argument("--no-determinism", action="store_true")
    p_fuzz.add_argument(
        "--jobs",
        default="1",
        help="parallel campaign workers (int or 'auto'); output is "
        "byte-identical to --jobs 1",
    )

    p_recover = sub.add_parser(
        "recover", help="crash + recover the backend; diff vs the crash-free twin"
    )
    p_recover.add_argument("--clients", type=int, default=1)
    p_recover.add_argument("--until", type=float, default=40_000.0)
    p_recover.add_argument(
        "--crash-at", type=float, default=2_000.0, help="sim time of the crash (s)"
    )
    p_recover.add_argument(
        "--downtime", type=float, default=60.0, help="backend downtime per crash (s)"
    )
    p_recover.add_argument(
        "--snapshot-every", type=int, default=8, help="checkpoint every N batches"
    )
    p_recover.add_argument(
        "--snapshot-retain", type=int, default=3,
        help="checkpoint generations retained (newest N + genesis)",
    )
    p_recover.add_argument(
        "--storage-faults",
        action="store_true",
        help="corrupt the newest snapshot generation at the crash, forcing "
        "a verified older-generation fallback (twin equivalence still holds)",
    )
    p_recover.add_argument(
        "--jobs",
        default="1",
        help="run the crashed leg and its twin concurrently (2 or 'auto')",
    )
    return parser


_COMMANDS = {
    "info": cmd_info,
    "guided": cmd_guided,
    "compare": cmd_compare,
    "deploy": cmd_deploy,
    "export": cmd_export,
    "trace": cmd_trace,
    "fuzz": cmd_fuzz,
    "recover": cmd_recover,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
