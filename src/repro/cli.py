"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — describe the library replica venue
* ``guided``    — run the guided SnapTask campaign and print the series
* ``compare``   — the full three-way field test (Figs. 11-12 data)
* ``deploy``    — the client/server deployment simulation
* ``export``    — run a guided campaign and export the floor plan
                   (PGM + JSON)
* ``trace``     — run the deployment with telemetry enabled and dump
                   ``trace.json`` (Perfetto), ``metrics.json`` and
                   ``BENCH_pipeline.json``
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .config import paper_config


def _make_bench(seed: int):
    from .eval import Workbench

    return Workbench.for_library(paper_config(seed=seed))


def cmd_info(args: argparse.Namespace) -> int:
    bench = _make_bench(args.seed)
    print(bench.venue.describe())
    print(f"grid: {bench.spec.n_rows} x {bench.spec.n_cols} cells of "
          f"{bench.spec.cell_size_m * 100:.0f} cm")
    print(f"world features: {len(bench.world)}")
    print(f"ground-truth region cells: {bench.ground_truth.region_cells}")
    print(f"outer bounds: {bench.ground_truth.outer_bounds_m:.2f} m")
    return 0


def cmd_guided(args: argparse.Namespace) -> int:
    from .eval import run_guided_experiment
    from .eval.reporting import format_series_rows, format_table1
    from .mapping import render_ascii

    bench = _make_bench(args.seed)
    result = run_guided_experiment(bench, max_tasks=args.max_tasks)
    print(format_series_rows(result.series))
    print()
    print(format_table1(result.featureless))
    print()
    print(f"venue covered: {result.run.venue_covered}; "
          f"{result.n_photo_tasks} photo + {result.n_annotation_tasks} annotation tasks")
    if args.map:
        print(render_ascii(result.final_maps, bench.ground_truth.region_mask, max_width=100))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .eval import (
        format_final_comparison,
        run_guided_experiment,
        run_opportunistic_experiment,
        run_unguided_experiment,
    )

    guided = run_guided_experiment(_make_bench(args.seed), max_tasks=args.max_tasks)
    unguided = run_unguided_experiment(_make_bench(args.seed))
    opportunistic = run_opportunistic_experiment(_make_bench(args.seed))
    print(
        format_final_comparison(
            [
                ("SnapTask", guided.final),
                ("Unguided participatory", unguided.series.final),
                ("Opportunistic", opportunistic.series.final),
            ],
            paper_values={
                "SnapTask": "98.12%",
                "unguided": "77.4%",
                "opportunistic": "63.67%",
            },
        )
    )
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    from .server import Deployment

    bench = _make_bench(args.seed)
    deployment = Deployment(bench, n_clients=args.clients)
    report = deployment.run(until_s=args.until)
    print(f"venue covered: {report.venue_covered}")
    print(f"simulated time: {report.sim_time_s:.0f} s; events: {report.events_processed}")
    print(f"tasks: {report.tasks_completed}; photos: {report.photos_uploaded}; "
          f"traffic: {report.total_traffic_mb:.0f} MB")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import Telemetry
    from .obs.bench import write_bench_pipeline
    from .obs.export import write_chrome_trace, write_metrics_json
    from .server import Deployment

    bench = _make_bench(args.seed)
    telemetry = Telemetry.enable()
    deployment = Deployment(bench, n_clients=args.clients, telemetry=telemetry)
    report = deployment.run(until_s=args.until)
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(
        telemetry.tracer, out / "trace.json", metrics=telemetry.metrics
    )
    metrics_path = write_metrics_json(telemetry.metrics, out / "metrics.json")
    bench_path = write_bench_pipeline(
        out / "BENCH_pipeline.json",
        telemetry.metrics,
        campaign={
            "command": "trace",
            "seed": args.seed,
            "clients": args.clients,
            "until_s": args.until,
            "sim_time_s": report.sim_time_s,
            "events_processed": report.events_processed,
            "tasks_completed": report.tasks_completed,
            "venue_covered": report.venue_covered,
        },
    )
    tracer = telemetry.tracer
    print(f"simulated {report.sim_time_s:.0f} s, {report.events_processed} events, "
          f"{report.tasks_completed} tasks")
    print(f"spans recorded: {tracer.finished_count} (dropped: {tracer.dropped_spans})")
    print(f"wrote {trace_path} (load it at https://ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    print(f"wrote {bench_path}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .eval import run_guided_experiment
    from .mapping.export import floorplan_to_json, floorplan_to_pgm

    bench = _make_bench(args.seed)
    result = run_guided_experiment(bench, max_tasks=args.max_tasks)
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    pgm = floorplan_to_pgm(
        result.final_maps, out / "floorplan.pgm", bench.ground_truth.region_mask
    )
    meta = floorplan_to_json(
        result.final_maps, out / "floorplan.json", venue_name=bench.venue.name
    )
    print(f"wrote {pgm} and {meta}")
    print(f"coverage: {result.final.coverage_percent:.2f}%  "
          f"bounds: {result.final.bounds_percent:.2f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SnapTask (ICDCS 2018) reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=2018, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the library replica")

    p_guided = sub.add_parser("guided", help="run the guided campaign")
    p_guided.add_argument("--max-tasks", type=int, default=120)
    p_guided.add_argument("--map", action="store_true", help="print the ASCII floor plan")

    p_compare = sub.add_parser("compare", help="guided vs unguided vs opportunistic")
    p_compare.add_argument("--max-tasks", type=int, default=120)

    p_deploy = sub.add_parser("deploy", help="client/server deployment simulation")
    p_deploy.add_argument("--clients", type=int, default=3)
    p_deploy.add_argument("--until", type=float, default=40_000.0)

    p_export = sub.add_parser("export", help="export the floor plan (PGM + JSON)")
    p_export.add_argument("--max-tasks", type=int, default=120)
    p_export.add_argument("--output", default="floorplan-out")

    p_trace = sub.add_parser(
        "trace", help="run the deployment with telemetry on; dump trace + metrics"
    )
    p_trace.add_argument("--clients", type=int, default=3)
    p_trace.add_argument("--until", type=float, default=20_000.0)
    p_trace.add_argument("--output", default="obs-out")
    return parser


_COMMANDS = {
    "info": cmd_info,
    "guided": cmd_guided,
    "compare": cmd_compare,
    "deploy": cmd_deploy,
    "export": cmd_export,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
