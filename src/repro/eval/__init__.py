"""Evaluation: metrics, dataset splits, experiment runners, reporting."""

from .datasets import (
    IncrementalMapEvaluator,
    IncrementalSeries,
    evaluate_incrementally,
    split_photos,
)
from .experiments import (
    BaselineExperimentResult,
    ComparisonResult,
    GuidedExperimentResult,
    run_comparison,
    run_guided_experiment,
    run_opportunistic_experiment,
    run_unguided_experiment,
)
from .metrics import (
    FeaturelessTaskMetrics,
    MapEvaluation,
    evaluate_maps,
    featureless_surface_metrics,
    visible_extent_intervals,
)
from .paths import (
    path_statistics,
    render_photo_positions,
    render_task_positions,
)
from .reporting import (
    format_final_comparison,
    format_series_rows,
    format_series_table,
    format_table1,
)
from .workbench import Workbench

__all__ = [
    "BaselineExperimentResult",
    "ComparisonResult",
    "FeaturelessTaskMetrics",
    "GuidedExperimentResult",
    "IncrementalMapEvaluator",
    "IncrementalSeries",
    "MapEvaluation",
    "Workbench",
    "evaluate_incrementally",
    "evaluate_maps",
    "featureless_surface_metrics",
    "format_final_comparison",
    "path_statistics",
    "render_photo_positions",
    "render_task_positions",
    "format_series_rows",
    "format_series_table",
    "format_table1",
    "run_comparison",
    "run_guided_experiment",
    "run_opportunistic_experiment",
    "run_unguided_experiment",
    "split_photos",
    "visible_extent_intervals",
]
