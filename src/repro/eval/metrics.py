"""Evaluation metrics beyond plain coverage.

* :func:`evaluate_maps` — coverage% + outer-bounds% of one model state
  against ground truth (the Fig. 11 y-axes).
* :func:`featureless_surface_metrics` — per-annotation-task precision /
  recall / F-score of reconstructed featureless surfaces (Table I):
  "Precision, recall and F-score illustrates how well and how much of the
  ground truth wall did the annotated obstacles cover."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..annotation.tool import AnnotationTaskResult
from ..camera.photo import Photo
from ..geometry import Segment, Vec2, merge_intervals, total_interval_length
from ..mapping.boundary import BoundsReport, outer_bounds_report
from ..mapping.coverage import CoverageMaps, CoverageScore, score_against_ground_truth
from ..sfm.model import SfmModel
from ..venue.ground_truth import GroundTruth
from ..venue.model import Venue
from ..venue.surfaces import Surface

#: Perpendicular tolerance for a reconstructed point to count as "on" the
#: ground-truth surface (metres).
SURFACE_TOLERANCE_M = 0.25


@dataclass(frozen=True)
class MapEvaluation:
    """Coverage% and bounds% of one model state (one Fig. 11 sample)."""

    n_photos: int
    coverage: CoverageScore
    bounds: BoundsReport

    @property
    def coverage_percent(self) -> float:
        return self.coverage.coverage_percent

    @property
    def bounds_percent(self) -> float:
        return self.bounds.percent


def evaluate_maps(
    venue: Venue,
    ground_truth: GroundTruth,
    maps: CoverageMaps,
    n_photos: int,
    merge_threshold_m: float = 0.15,
) -> MapEvaluation:
    """Score one (obstacles, visibility) pair against ground truth."""
    return MapEvaluation(
        n_photos=n_photos,
        coverage=score_against_ground_truth(
            maps, ground_truth.region_mask, ground_truth.obstacle_mask
        ),
        bounds=outer_bounds_report(venue, maps.obstacles, merge_threshold_m),
    )


@dataclass(frozen=True)
class FeaturelessTaskMetrics:
    """One Table I row."""

    task_number: int
    identified_surfaces: int
    reconstructed_surfaces: int
    precision: float
    recall: float

    @property
    def f_score(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def visible_extent_intervals(
    surface: Surface,
    photos: Sequence[Photo],
    venue: Venue,
    sample_step_m: float = 0.05,
) -> List[Tuple[float, float]]:
    """Portions of ``surface`` (as [t0, t1] metres along it) visible in
    at least one photo — Table I's recall denominator: "ground truth
    lengths of featureless obstacles visible in the photosets"."""
    seg = surface.segment
    n = max(2, int(np.ceil(seg.length / sample_step_m)) + 1)
    ts = np.linspace(0.0, 1.0, n)
    samples = np.array([[p.x, p.y] for p in (seg.point_at(float(t)) for t in ts)])

    seen = np.zeros(n, dtype=bool)
    for photo in photos:
        pose = photo.true_pose
        intr = photo.exif.intrinsics()
        rel = samples - np.array([pose.position.x, pose.position.y])
        bearings = np.arctan2(rel[:, 1], rel[:, 0]) - pose.yaw_rad
        bearings = (bearings + np.pi) % (2 * np.pi) - np.pi
        in_fov = np.abs(bearings) <= intr.hfov_rad / 2.0
        if not in_fov.any():
            continue
        mid_z = surface.base_z + surface.height / 2.0
        vis = venue.opaque_soup.visible(
            pose.position,
            samples[in_fov],
            target_margin=5e-3,
            origin_z=pose.height_m,
            target_z=np.full(int(in_fov.sum()), mid_z),
        )
        idx = np.nonzero(in_fov)[0][vis]
        seen[idx] = True

    intervals: List[Tuple[float, float]] = []
    half = (seg.length / (n - 1)) / 2.0
    for i in np.nonzero(seen)[0]:
        center = float(ts[i]) * seg.length
        intervals.append((max(0.0, center - half), min(seg.length, center + half)))
    return merge_intervals(intervals, gap=2.0 * half + 1e-9)


def featureless_surface_metrics(
    result: AnnotationTaskResult,
    model: SfmModel,
    venue: Venue,
    task_number: int,
    merge_threshold_m: float = 0.15,
) -> FeaturelessTaskMetrics:
    """Compute one Table I row for an executed annotation task."""
    cloud = model.cloud
    cloud_ids = cloud.feature_ids
    xy = cloud.floor_xy()

    reconstructed = 0
    inlier_points = 0
    total_points = 0
    recall_num = 0.0
    recall_den = 0.0

    for obj in result.imprint.objects:
        surface = venue.surface(obj.surface_id)
        seg = surface.segment
        obj_ids = np.asarray(obj.feature_ids, dtype=int)
        mask = np.isin(cloud_ids, obj_ids)
        if not mask.any():
            continue
        reconstructed += 1
        points = xy[mask]
        total_points += points.shape[0]

        a = np.array([seg.a.x, seg.a.y])
        d = np.array([seg.b.x - seg.a.x, seg.b.y - seg.a.y])
        length = float(np.hypot(*d))
        d_unit = d / length
        rel = points - a
        t = rel @ d_unit
        perp = np.abs(rel[:, 0] * (-d_unit[1]) + rel[:, 1] * d_unit[0])
        inlier = (perp <= SURFACE_TOLERANCE_M) & (t >= -SURFACE_TOLERANCE_M) & (
            t <= length + SURFACE_TOLERANCE_M
        )
        inlier_points += int(inlier.sum())

        # Recall: how much of the visible ground-truth extent is covered.
        visible = visible_extent_intervals(surface, result.photos, venue)
        covered = [
            (max(0.0, float(ti) - 0.075), min(length, float(ti) + 0.075))
            for ti in t[inlier]
        ]
        covered = merge_intervals(covered, merge_threshold_m)
        recall_den += total_interval_length(visible)
        recall_num += _intersection_length(covered, visible)

    precision = inlier_points / total_points if total_points else 0.0
    recall = min(1.0, recall_num / recall_den) if recall_den else 0.0
    return FeaturelessTaskMetrics(
        task_number=task_number,
        identified_surfaces=result.n_identified,
        reconstructed_surfaces=reconstructed,
        precision=precision,
        recall=recall,
    )


def _intersection_length(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    total = 0.0
    for lo_a, hi_a in a:
        for lo_b, hi_b in b:
            total += max(0.0, min(hi_a, hi_b) - max(lo_a, lo_b))
    return total
