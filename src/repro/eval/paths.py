"""Rendering of participant paths and task positions (Figs. 8 & 9).

Fig. 8: "Paths of the participants who have carried out opportunistic
sensing tasks", with camera positions of the extracted frames.
Fig. 9: "A generated point cloud and positions of the generated
crowdsourcing tasks marked on a library floor plan" — red circles for
photo tasks, blue crosses for where capture actually happened, green
diamonds for annotation tasks.

These helpers render the same content as ASCII over the venue grid.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..camera.photo import Photo
from ..geometry import Vec2
from ..mapping.grid import GridSpec

PATH_CHAR = "o"
TASK_PHOTO_CHAR = "T"
TASK_ANNOTATION_CHAR = "A"
ARRIVED_CHAR = "x"
OUTSIDE_CHAR = "~"
EMPTY_CHAR = " "


def _canvas(spec: GridSpec, region_mask: Optional[np.ndarray], factor: int):
    n_rows = (spec.n_rows + factor - 1) // factor
    n_cols = (spec.n_cols + factor - 1) // factor
    canvas = [[EMPTY_CHAR] * n_cols for _ in range(n_rows)]
    if region_mask is not None:
        for row in range(n_rows):
            for col in range(n_cols):
                block = region_mask[
                    row * factor : (row + 1) * factor,
                    col * factor : (col + 1) * factor,
                ]
                if not block.any():
                    canvas[row][col] = OUTSIDE_CHAR
    return canvas


def _plot(canvas, spec: GridSpec, factor: int, p: Vec2, char: str) -> None:
    cell = spec.cell_of(p)
    if cell is None:
        return
    row, col = cell[0] // factor, cell[1] // factor
    if 0 <= row < len(canvas) and 0 <= col < len(canvas[0]):
        canvas[row][col] = char


def _render(canvas) -> str:
    return "\n".join("".join(row).rstrip() for row in reversed(canvas))


def render_photo_positions(
    spec: GridSpec,
    photos: Sequence[Photo],
    region_mask: Optional[np.ndarray] = None,
    max_width: int = 100,
) -> str:
    """Fig.-8-style map: camera positions of the photos used for the model."""
    factor = max(1, int(np.ceil(spec.n_cols / max_width)))
    canvas = _canvas(spec, region_mask, factor)
    for photo in photos:
        _plot(canvas, spec, factor, photo.true_pose.position, PATH_CHAR)
    return _render(canvas)


def render_task_positions(
    spec: GridSpec,
    task_locations: Sequence[Tuple[str, float, float]],
    arrived_positions: Sequence[Vec2] = (),
    region_mask: Optional[np.ndarray] = None,
    max_width: int = 100,
) -> str:
    """Fig.-9-style map: task positions and actual capture positions.

    ``task_locations`` are (kind, x, y) triples as produced by
    :class:`repro.eval.experiments.GuidedExperimentResult`.
    """
    factor = max(1, int(np.ceil(spec.n_cols / max_width)))
    canvas = _canvas(spec, region_mask, factor)
    for position in arrived_positions:
        _plot(canvas, spec, factor, position, ARRIVED_CHAR)
    for kind, x, y in task_locations:
        char = TASK_ANNOTATION_CHAR if kind == "annotation" else TASK_PHOTO_CHAR
        _plot(canvas, spec, factor, Vec2(x, y), char)
    return _render(canvas)


def path_statistics(photos: Sequence[Photo]) -> dict:
    """Summary numbers for a photo-position map (Fig. 8's caption data)."""
    if not photos:
        return {"n_photos": 0, "bbox": None, "spread_m": 0.0}
    xs = np.array([p.true_pose.position.x for p in photos])
    ys = np.array([p.true_pose.position.y for p in photos])
    return {
        "n_photos": len(photos),
        "bbox": (float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())),
        "spread_m": float(np.hypot(xs.std(), ys.std())),
    }
