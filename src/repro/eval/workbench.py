"""The experiment workbench: one object wiring every substrate together.

Experiments, examples and the benchmark harness all need the same setup:
a venue, its feature world, ground truth on a shared grid spec, a capture
simulator, a path planner and seeded RNG streams. :class:`Workbench`
builds all of it deterministically from a :class:`SnapTaskConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..annotation.tool import AnnotationCampaign
from ..camera.capture import CaptureSimulator
from ..config import SnapTaskConfig, paper_config
from ..core.pipeline import SnapTaskPipeline
from ..crowd.guided import GuidedCampaign
from ..crowd.mobility import HotspotMobility
from ..crowd.opportunistic import OpportunisticCollector
from ..crowd.participants import guided_participants, make_participants
from ..crowd.participatory import UnguidedCollector
from ..mapping.grid import GridSpec
from ..nav.localization import ImageLocalizer
from ..nav.navigation import Navigator
from ..nav.pathfinding import PathPlanner
from ..simkit.rng import RngRegistry
from ..venue.features import FeatureWorld, build_feature_world
from ..venue.ground_truth import GroundTruth, build_ground_truth, default_grid_spec
from ..venue.library import build_library
from ..venue.model import Venue


class Workbench:
    """Deterministic bundle of substrates for one venue + config."""

    def __init__(self, venue: Venue, config: Optional[SnapTaskConfig] = None):
        self.config = (config or paper_config()).validate()
        self.venue = venue
        self.rng = RngRegistry(self.config.seed)
        self.spec: GridSpec = default_grid_spec(venue, self.config.grid.cell_size_m)
        self.ground_truth: GroundTruth = build_ground_truth(venue, self.spec)
        self.world: FeatureWorld = build_feature_world(venue, self.rng.stream("world"))
        self.capture = CaptureSimulator(
            self.world,
            self.config.sfm,
            self.config.camera,
            self.rng.stream("capture"),
        )
        self.planner = PathPlanner(self.spec, self.ground_truth.traversable_mask)
        self._pipeline_counter = 0

    # -- factories ---------------------------------------------------------------

    @staticmethod
    def for_library(config: Optional[SnapTaskConfig] = None) -> "Workbench":
        """The paper's evaluation venue."""
        return Workbench(build_library(), config)

    def with_backend(
        self,
        sfm_workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
    ) -> "Workbench":
        """A fresh workbench on the same venue with a different SfM lane.

        ``sfm_workers=None`` is the infinite-server model; a bounded pool
        (optionally with a bounded admission queue) makes the backend's
        processing capacity explicit. Everything else — venue, seeds,
        ground truth — is rebuilt identically, so sweeps over the lane
        shape are apples-to-apples.
        """
        return Workbench(
            self.venue,
            self.config.with_backend(
                sfm_workers=sfm_workers, queue_limit=queue_limit
            ),
        )

    def make_pipeline(
        self, use_site_mask: bool = True, telemetry=None, full_rebuild: bool = False
    ) -> SnapTaskPipeline:
        """A fresh SnapTask backend pipeline for this venue.

        ``full_rebuild=True`` builds the from-scratch oracle variant
        (every incremental subsystem recomputes per batch) — the twin
        used by the differential suites and the DST harness.
        """
        self._pipeline_counter += 1
        return SnapTaskPipeline(
            self.world,
            self.config,
            self.spec,
            self.venue.entrance,
            self.rng.stream(f"pipeline-{self._pipeline_counter}"),
            site_mask=self.ground_truth.region_mask if use_site_mask else None,
            full_rebuild=full_rebuild,
            telemetry=telemetry,
        )

    def make_navigator(self, name: str = "nav") -> Navigator:
        localizer = ImageLocalizer(self.config.nav, self.rng.stream(f"{name}-loc"))
        return Navigator(self.venue, self.planner, localizer, self.rng.stream(name))

    def make_mobility(self, name: str = "mobility") -> HotspotMobility:
        return HotspotMobility(self.venue, self.planner, self.rng.stream(name))

    def make_guided_campaign(
        self, pipeline: SnapTaskPipeline, n_participants: int = 10
    ) -> GuidedCampaign:
        annotation = AnnotationCampaign(
            self.venue, self.capture, self.config, self.rng.stream("annotation")
        )
        return GuidedCampaign(
            venue=self.venue,
            capture=self.capture,
            pipeline=pipeline,
            navigator=self.make_navigator("guided-nav"),
            annotation=annotation,
            participants=guided_participants(
                n_participants, self.rng.stream("guided-participants")
            ),
            rng=self.rng.stream("guided"),
        )

    def make_opportunistic_collector(self) -> OpportunisticCollector:
        # The paper's sharpest-frame window is 30 frames of ~25 fps video;
        # the simulator samples frames at 5 Hz, so the equivalent window is
        # a fifth of that (1.2 s either way).
        window = max(1, self.config.eval.video_sharpness_window // 5)
        return OpportunisticCollector(
            self.venue,
            self.capture,
            self.make_mobility("opportunistic-mobility"),
            self.rng.stream("opportunistic"),
            window=window,
        )

    def make_unguided_collector(self) -> UnguidedCollector:
        return UnguidedCollector(
            self.venue,
            self.capture,
            self.rng.stream("unguided"),
            blur_filter_threshold=self.config.tasks.low_quality_laplacian,
        )
