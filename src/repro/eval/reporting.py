"""Plain-text report formatting for experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent across benches and examples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .datasets import IncrementalSeries
from .metrics import FeaturelessTaskMetrics


def format_series_table(
    series_list: Sequence[IncrementalSeries],
    metric: str = "coverage",
    title: str = "",
) -> str:
    """Fig.-11-style table: one block of rows per approach."""
    if metric not in ("coverage", "bounds"):
        raise ValueError("metric must be 'coverage' or 'bounds'")
    lines: List[str] = []
    if title:
        lines.append(title)
    for series in series_list:
        values = (
            series.coverage_percents() if metric == "coverage" else series.bounds_percents()
        )
        lines.append(f"-- {series.label}")
        for n, v in zip(series.photo_counts(), values):
            lines.append(f"{n:>8} photos -> {v:>6.2f}%")
    return "\n".join(lines)


def format_series_rows(series: IncrementalSeries) -> str:
    """One approach's (photos, coverage%, bounds%) rows."""
    lines = [f"{series.label}:"]
    lines.append(f"{'photos':>8} {'coverage%':>11} {'bounds%':>9}")
    for sample in series.samples:
        lines.append(
            f"{sample.n_photos:>8} {sample.coverage_percent:>10.2f}% {sample.bounds_percent:>8.2f}%"
        )
    return "\n".join(lines)


def format_table1(rows: Sequence[FeaturelessTaskMetrics]) -> str:
    """Table I: featureless-surface reconstruction per annotation task."""
    lines = [
        "Table I: Analysis of Featureless Surfaces Reconstruction",
        f"{'Task#':>5} {'Identified':>10} {'Reconstr.':>9} {'Precision':>9} {'Recall':>7} {'F-score':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.task_number:>5} {row.identified_surfaces:>10} "
            f"{row.reconstructed_surfaces:>9} {row.precision:>9.2f} "
            f"{row.recall:>7.2f} {row.f_score:>8.2f}"
        )
    if rows:
        usable = [r for r in rows if r.reconstructed_surfaces > 0]
        if usable:
            mean_p = sum(r.precision for r in usable) / len(usable)
            mean_f = sum(r.f_score for r in usable) / len(usable)
            lines.append(f"{'mean':>5} {'':>10} {'':>9} {mean_p:>9.2f} {'':>7} {mean_f:>8.2f}")
    return "\n".join(lines)


def format_final_comparison(
    labels_and_finals: Sequence, paper_values: Optional[dict] = None
) -> str:
    """Fig.-12-style summary: final coverage/bounds per approach."""
    lines = [
        f"{'approach':>26} {'coverage%':>11} {'bounds%':>9} {'photos':>8}"
    ]
    for label, final in labels_and_finals:
        lines.append(
            f"{label:>26} {final.coverage_percent:>10.2f}% "
            f"{final.bounds_percent:>8.2f}% {final.n_photos:>8}"
        )
    if paper_values:
        lines.append("paper reference: " + ", ".join(f"{k}={v}" for k, v in paper_values.items()))
    return "\n".join(lines)
