"""Experiment runners: one function per paper table/figure.

Each runner reproduces the corresponding evaluation procedure of Sec. V on
the simulated library and returns structured results the benchmark
harness formats. See DESIGN.md's experiment index for the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..camera.photo import Photo
from ..core.tasks import TaskKind
from ..crowd.guided import GuidedRunResult
from ..mapping.coverage import CoverageMaps
from .datasets import (
    IncrementalMapEvaluator,
    IncrementalSeries,
    evaluate_incrementally,
    split_photos,
)
from .metrics import (
    FeaturelessTaskMetrics,
    MapEvaluation,
    evaluate_maps,
    featureless_surface_metrics,
)
from .workbench import Workbench


# --------------------------------------------------------------------------
# Guided experiment (SnapTask itself): Figs. 9-12 + Table I source data
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GuidedExperimentResult:
    """The full guided campaign with per-task evaluation samples."""

    run: GuidedRunResult
    series: IncrementalSeries
    final_maps: CoverageMaps
    featureless: Tuple[FeaturelessTaskMetrics, ...]
    task_locations: Tuple[Tuple[str, float, float], ...]  # (kind, x, y)

    @property
    def final(self) -> MapEvaluation:
        return self.series.final

    @property
    def n_photo_tasks(self) -> int:
        return len([k for k, _x, _y in self.task_locations if k == "photo_collection"])

    @property
    def n_annotation_tasks(self) -> int:
        return len([k for k, _x, _y in self.task_locations if k == "annotation"])

    def mean_precision(self) -> float:
        rows = [m for m in self.featureless if m.reconstructed_surfaces > 0]
        return sum(m.precision for m in rows) / len(rows) if rows else 0.0

    def mean_f_score(self) -> float:
        rows = [m for m in self.featureless if m.reconstructed_surfaces > 0]
        return sum(m.f_score for m in rows) / len(rows) if rows else 0.0


def run_guided_experiment(
    bench: Workbench, max_tasks: int = 60, n_participants: int = 10
) -> GuidedExperimentResult:
    """Run the guided campaign and evaluate after every photo task."""
    pipeline = bench.make_pipeline()
    campaign = bench.make_guided_campaign(pipeline, n_participants)
    run = campaign.run(max_tasks=max_tasks)

    # Per-photo-task evaluation samples (Fig. 10 / Fig. 11 guided curve).
    samples: List[MapEvaluation] = []
    n_photos = 0
    for record in run.completed:
        if record.task.kind != TaskKind.PHOTO_COLLECTION:
            continue
        n_photos += record.n_photos
        samples.append(
            evaluate_maps(
                bench.venue,
                bench.ground_truth,
                record.outcome.maps,
                n_photos,
                bench.config.eval.bounds_merge_threshold_m,
            )
        )
    series = IncrementalSeries(label="SnapTask", samples=tuple(samples))

    model = pipeline.model()
    featureless: List[FeaturelessTaskMetrics] = []
    for i, record in enumerate(run.annotation_tasks, start=1):
        assert record.annotation is not None
        featureless.append(
            featureless_surface_metrics(
                record.annotation,
                model,
                bench.venue,
                task_number=i,
                merge_threshold_m=bench.config.eval.bounds_merge_threshold_m,
            )
        )
    locations = tuple(
        (record.task.kind.value, record.task.location.x, record.task.location.y)
        for record in run.completed
    )
    return GuidedExperimentResult(
        run=run,
        series=series,
        final_maps=pipeline.maps,
        featureless=tuple(featureless),
        task_locations=locations,
    )


# --------------------------------------------------------------------------
# Baseline experiments: opportunistic / unguided participatory
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineExperimentResult:
    """A baseline campaign with its incremental S_i series."""

    label: str
    series: IncrementalSeries
    final_maps: CoverageMaps
    final_model: object
    n_photos_collected: int


def run_opportunistic_experiment(
    bench: Workbench,
    n_videos: int = 20,
    n_participants: int = 10,
    max_photos: Optional[int] = 700,
) -> BaselineExperimentResult:
    """Sec. V-B1: daily-activity videos -> sharpest frames -> S_i curve."""
    from ..crowd.participants import make_participants

    collector = bench.make_opportunistic_collector()
    participants = make_participants(
        n_participants, bench.rng.stream("opportunistic-participants")
    )
    dataset = collector.collect(participants, n_videos=n_videos)
    photos = list(dataset.photos)
    if max_photos is not None:
        photos = photos[:max_photos]
    return _evaluate_baseline(bench, photos, "Opportunistic", "opportunistic-eval")


def run_unguided_experiment(
    bench: Workbench,
    n_participants: int = 10,
    photos_per_participant: int = 100,
) -> BaselineExperimentResult:
    """Sec. V-B2: arbitrary photos, blur-filtered -> S_i curve."""
    from ..crowd.participants import make_participants

    collector = bench.make_unguided_collector()
    participants = make_participants(
        n_participants, bench.rng.stream("unguided-participants")
    )
    dataset = collector.collect(participants, photos_per_participant)
    return _evaluate_baseline(
        bench, list(dataset.photos), "Unguided participatory", "unguided-eval"
    )


def _evaluate_baseline(
    bench: Workbench, photos: List[Photo], label: str, rng_name: str
) -> BaselineExperimentResult:
    evaluator = IncrementalMapEvaluator(
        bench.world,
        bench.venue,
        bench.ground_truth,
        bench.config,
        bench.spec,
        bench.rng.stream(rng_name),
    )
    pipeline = bench.make_pipeline()  # only for bootstrap photo generation
    initial = bench.make_guided_campaign(pipeline, 2).bootstrap_photos()
    parts = split_photos(photos, bench.config.eval.photos_per_split)
    series = evaluate_incrementally(evaluator, initial, parts, label)
    return BaselineExperimentResult(
        label=label,
        series=series,
        final_maps=evaluator.current_maps(),
        final_model=evaluator.current_model(),
        n_photos_collected=len(photos),
    )


# --------------------------------------------------------------------------
# Figure-level assemblies
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ComparisonResult:
    """Fig. 11 / Fig. 12 / headline deltas: all three approaches."""

    guided: GuidedExperimentResult
    unguided: BaselineExperimentResult
    opportunistic: BaselineExperimentResult

    def coverage_gain_over(self, baseline: BaselineExperimentResult) -> float:
        """Headline delta at matched photo budget: SnapTask coverage minus
        the baseline's coverage at (at least) the same photo count."""
        guided_final = self.guided.final
        budget = guided_final.n_photos
        candidates = [
            s for s in baseline.series.samples if s.n_photos >= budget
        ] or [baseline.series.final]
        return guided_final.coverage_percent - candidates[0].coverage_percent


def run_comparison(bench_factory, max_tasks: int = 60) -> ComparisonResult:
    """Run all three campaigns on identical venues (fresh workbench each,
    same seed => identical world) and assemble the comparison."""
    guided = run_guided_experiment(bench_factory(), max_tasks=max_tasks)
    unguided = run_unguided_experiment(bench_factory())
    opportunistic = run_opportunistic_experiment(bench_factory())
    return ComparisonResult(
        guided=guided, unguided=unguided, opportunistic=opportunistic
    )
