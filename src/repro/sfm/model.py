"""The SfM model: point cloud + recovered camera poses.

"The output of the SfM pipeline includes a 3D point cloud and camera poses
of the images used to build the 3D point cloud" (Sec. II-A). Recovered
poses carry the intrinsics recovered from EXIF, which is what the
visibility map (Algorithm 3) uses to compute each camera's FOV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..camera.intrinsics import Intrinsics
from ..camera.pose import CameraPose
from ..errors import ReconstructionError
from .pointcloud import PointCloud


@dataclass(frozen=True)
class RecoveredCamera:
    """One registered photo's recovered pose + EXIF-derived intrinsics.

    ``observed_feature_ids`` records which features the photo detected;
    the visibility map intersects them with the triangulated cloud to
    know where this camera actually contributed information.
    """

    photo_id: int
    pose: CameraPose
    intrinsics: Intrinsics
    n_inliers: int
    observed_feature_ids: Optional[np.ndarray] = None

    @property
    def hfov_rad(self) -> float:
        return self.intrinsics.hfov_rad


class SfmModel:
    """Immutable snapshot of a reconstruction."""

    def __init__(self, cloud: PointCloud, cameras: Sequence[RecoveredCamera]):
        self._cloud = cloud
        self._cameras: Tuple[RecoveredCamera, ...] = tuple(
            sorted(cameras, key=lambda c: c.photo_id)
        )
        ids = [c.photo_id for c in self._cameras]
        if len(set(ids)) != len(ids):
            raise ReconstructionError("duplicate camera photo ids in model")
        self._by_id: Dict[int, RecoveredCamera] = {c.photo_id: c for c in self._cameras}

    @property
    def cloud(self) -> PointCloud:
        return self._cloud

    @property
    def cameras(self) -> Tuple[RecoveredCamera, ...]:
        return self._cameras

    @property
    def n_points(self) -> int:
        return len(self._cloud)

    @property
    def n_cameras(self) -> int:
        return len(self._cameras)

    def camera(self, photo_id: int) -> RecoveredCamera:
        try:
            return self._by_id[photo_id]
        except KeyError:
            raise ReconstructionError(f"photo {photo_id} is not registered") from None

    def is_registered(self, photo_id: int) -> bool:
        return photo_id in self._by_id

    def with_cloud(self, cloud: PointCloud) -> "SfmModel":
        """Same cameras, different cloud (e.g. after outlier filtering)."""
        return SfmModel(cloud, self._cameras)

    def mean_camera_position(self) -> Optional[Tuple[float, float]]:
        """Mean camera floor position — the blue "X" markers of Fig. 9."""
        if not self._cameras:
            return None
        xs = [c.pose.position.x for c in self._cameras]
        ys = [c.pose.position.y for c in self._cameras]
        return (sum(xs) / len(xs), sum(ys) / len(ys))

    def describe(self) -> str:
        return f"SfmModel({self.n_points} points, {self.n_cameras} cameras)"

    @staticmethod
    def empty() -> "SfmModel":
        return SfmModel(PointCloud.empty(), [])
