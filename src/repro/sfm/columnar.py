"""Columnar SfM state: dense feature interning + append-only point columns.

The incremental SfM engine historically kept its per-feature state in
Python dicts keyed by the *sparse* global feature-id space
(``_view_masks: Dict[int, int]``, ``_feature_obs: Dict[int, Set[int]]``)
and rebuilt a fresh :class:`~repro.sfm.pointcloud.PointCloud` — one
dataclass object per point — on every ``model()`` call.  Both patterns
cost O(model) Python work per uploaded batch.

This module supplies the two columnar substrates that turn the per-batch
cost into O(delta):

* :class:`FeatureColumns` interns feature ids into a dense ``[0, n)``
  index the first time they are seen, and keeps every per-feature scalar
  (view-compatibility bitmask, registered-observer count, triangulation
  flag, floor-plane position, wildcard flag) in parallel numpy arrays.
  The registration test becomes a vectorized gather + bitmask intersect
  instead of a per-feature dict loop.

* :class:`PointColumnStore` is an append-only columnar store for
  triangulated points.  Snapshots (``sorted_columns``) are maintained by
  merging only the batch's *new* rows into the previous frozen snapshot
  (``np.searchsorted`` + ``np.insert``), and the merged arrays are
  frozen (``writeable=False``) so :class:`PointCloud` views can share
  them copy-on-write across batches.

Growth policy for both stores is capacity doubling, so amortized append
cost is O(1) per row.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["FeatureColumns", "PointColumnStore"]


def _grow(array: np.ndarray, n_needed: int) -> np.ndarray:
    """Return ``array`` grown (by doubling) to hold ``n_needed`` rows."""
    cap = array.shape[0]
    if n_needed <= cap:
        return array
    new_cap = max(n_needed, cap * 2, 64)
    shape = (new_cap,) + array.shape[1:]
    grown = np.empty(shape, dtype=array.dtype)
    grown[:cap] = array
    return grown


class FeatureColumns:
    """Dense interning of the sparse feature-id space + per-feature columns.

    ``resolve(fid) -> (x, y, wildcard)`` classifies a feature at intern
    time: ``wildcard`` features (artificial textures) match from every
    viewpoint and carry no floor position; all others resolve to their
    oracle floor-plane position, used for angular-bucket computation.
    """

    def __init__(self, resolve: Callable[[int], Tuple[float, float, bool]]):
        self._resolve = resolve
        self._index: Dict[int, int] = {}
        cap = 1024
        self.ids = np.empty(cap, dtype=np.int64)
        self.x = np.empty(cap, dtype=np.float64)
        self.y = np.empty(cap, dtype=np.float64)
        self.wildcard = np.zeros(cap, dtype=bool)
        #: Per-feature bitmask of angular buckets registered observers saw
        #: it from (0 == not yet observed by any registered photo).
        self.view_mask = np.zeros(cap, dtype=np.int64)
        #: Number of *registered* photos observing the feature.
        self.obs_count = np.zeros(cap, dtype=np.int32)
        #: Whether the feature has been triangulated into a cloud point.
        self.has_point = np.zeros(cap, dtype=bool)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def index_of(self, fid: int) -> Optional[int]:
        """Dense index of ``fid`` or ``None`` if never interned."""
        return self._index.get(fid)

    def intern_many(self, fids: np.ndarray) -> np.ndarray:
        """Dense indices for ``fids``, interning unseen ids on the fly.

        The Python loop runs only over ids; unseen ids additionally pay
        one ``resolve`` call.  Each photo is interned exactly once (the
        engine caches the result), so this is O(features-per-photo) per
        photo over the whole campaign — not per batch retest.
        """
        index = self._index
        out = np.empty(fids.shape[0], dtype=np.int64)
        for i, raw in enumerate(fids):
            fid = int(raw)
            dense = index.get(fid)
            if dense is None:
                dense = self._add(fid)
            out[i] = dense
        return out

    def _add(self, fid: int) -> int:
        dense = self._n
        n_needed = dense + 1
        self.ids = _grow(self.ids, n_needed)
        self.x = _grow(self.x, n_needed)
        self.y = _grow(self.y, n_needed)
        if n_needed > self.wildcard.shape[0]:
            # Zero-initialised columns must preserve zeros on growth.
            self.wildcard = _grow_zeros(self.wildcard, n_needed)
            self.view_mask = _grow_zeros(self.view_mask, n_needed)
            self.obs_count = _grow_zeros(self.obs_count, n_needed)
            self.has_point = _grow_zeros(self.has_point, n_needed)
        x, y, wildcard = self._resolve(fid)
        self.ids[dense] = fid
        self.x[dense] = x
        self.y[dense] = y
        self.wildcard[dense] = wildcard
        self._index[fid] = dense
        self._n = n_needed
        return dense

    def ids_of(self, dense: np.ndarray) -> np.ndarray:
        """Raw feature ids for an array of dense indices."""
        return self.ids[dense]


def _grow_zeros(array: np.ndarray, n_needed: int) -> np.ndarray:
    cap = array.shape[0]
    if n_needed <= cap:
        return array
    new_cap = max(n_needed, cap * 2, 64)
    grown = np.zeros((new_cap,) + array.shape[1:], dtype=array.dtype)
    grown[:cap] = array
    return grown


class PointColumnStore:
    """Append-only columnar store of triangulated points.

    Rows are appended in triangulation order; ``sorted_columns`` exposes
    the store sorted by feature id, maintained incrementally: the delta
    since the previous snapshot is sorted on its own (O(d log d)) and
    merged into the frozen previous snapshot with one vectorized
    ``np.insert`` pass.  Snapshots are immutable (``writeable=False``),
    so downstream :class:`PointCloud` instances can alias them safely —
    this is what makes ``model()`` O(delta) instead of O(points).
    """

    def __init__(self) -> None:
        cap = 256
        self._ids = np.empty(cap, dtype=np.int64)
        self._xyz = np.empty((cap, 3), dtype=np.float64)
        self._views = np.empty(cap, dtype=np.int64)
        self._n = 0
        self._snap: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._snap_n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        return self._n

    def append(self, fid: int, x: float, y: float, z: float, n_views: int) -> None:
        n_needed = self._n + 1
        self._ids = _grow(self._ids, n_needed)
        self._xyz = _grow(self._xyz, n_needed)
        self._views = _grow(self._views, n_needed)
        i = self._n
        self._ids[i] = fid
        self._xyz[i, 0] = x
        self._xyz[i, 1] = y
        self._xyz[i, 2] = z
        self._views[i] = n_views
        self._n = n_needed

    def ids_slice(self, start: int) -> np.ndarray:
        """Feature ids appended since row ``start`` (read-only copy)."""
        return self._ids[start:self._n].copy()

    def rows(self):
        """Iterate (fid, x, y, z, n_views) in append order (diagnostics)."""
        for i in range(self._n):
            yield (
                int(self._ids[i]),
                float(self._xyz[i, 0]),
                float(self._xyz[i, 1]),
                float(self._xyz[i, 2]),
                int(self._views[i]),
            )

    def sorted_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ids, xyz, views) sorted by feature id; frozen shared arrays.

        Cost is O(delta log delta + merge) per refresh and O(1) when no
        point was appended since the last call.
        """
        if self._snap is not None and self._snap_n == self._n:
            return self._snap
        new_ids = self._ids[self._snap_n:self._n]
        new_xyz = self._xyz[self._snap_n:self._n]
        new_views = self._views[self._snap_n:self._n]
        order = np.argsort(new_ids, kind="stable")
        new_ids = new_ids[order]
        new_xyz = new_xyz[order]
        new_views = new_views[order]
        if self._snap is None or self._snap_n == 0:
            ids, xyz, views = new_ids.copy(), new_xyz.copy(), new_views.copy()
        else:
            old_ids, old_xyz, old_views = self._snap
            pos = np.searchsorted(old_ids, new_ids)
            ids = np.insert(old_ids, pos, new_ids)
            xyz = np.insert(old_xyz, pos, new_xyz, axis=0)
            views = np.insert(old_views, pos, new_views)
        for arr in (ids, xyz, views):
            arr.setflags(write=False)
        self._snap = (ids, xyz, views)
        self._snap_n = self._n
        return self._snap
