"""Point clouds produced by the SfM simulator.

A cloud is a set of 3-D points, each tied to the stable feature id it was
triangulated from and annotated with its view count and provenance
(world / artificial-texture / reflection). The mapping layer consumes the
numpy views; the provenance masks exist for evaluation and debugging.

Storage is columnar: ``(N,)`` feature ids, ``(N, 3)`` positions and
``(N,)`` view counts. The per-point :class:`CloudPoint` tuple is built
lazily — the hot paths (mapping, SOR, subsetting, merging) operate on the
arrays and never materialise Python objects. Clouds built by the
incremental engine share frozen (``writeable=False``) arrays with the
engine's append-only store, so taking a model snapshot does not copy the
whole cloud (copy-on-write semantics; see ``repro.sfm.columnar``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ReconstructionError
from ..venue.features import ARTIFICIAL_FEATURE_BASE, REFLECTION_FEATURE_BASE


@dataclass(frozen=True)
class CloudPoint:
    """One reconstructed 3-D point."""

    feature_id: int
    x: float
    y: float
    z: float
    n_views: int

    @property
    def is_artificial(self) -> bool:
        """Created from an Algorithm-6 artificial texture."""
        return ARTIFICIAL_FEATURE_BASE <= self.feature_id < REFLECTION_FEATURE_BASE

    @property
    def is_reflection(self) -> bool:
        return self.feature_id >= REFLECTION_FEATURE_BASE


class PointCloud:
    """Immutable collection of reconstructed points with numpy views."""

    def __init__(self, points: Sequence[CloudPoint]):
        pts = tuple(points)
        n = len(pts)
        self._xyz = np.zeros((n, 3), dtype=float)
        self._ids = np.zeros(n, dtype=int)
        self._views = np.zeros(n, dtype=int)
        for i, p in enumerate(pts):
            self._xyz[i] = (p.x, p.y, p.z)
            self._ids[i] = p.feature_id
            self._views[i] = p.n_views
        self._points: Optional[Tuple[CloudPoint, ...]] = pts

    @classmethod
    def from_columns(
        cls, ids: np.ndarray, xyz: np.ndarray, views: np.ndarray
    ) -> "PointCloud":
        """Wrap pre-built columnar arrays without copying.

        The arrays are aliased, not copied — callers hand over ownership
        (the incremental engine passes frozen snapshot arrays). The
        ``CloudPoint`` tuple is materialised only if ``points`` is read.
        """
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ReconstructionError("from_columns expects (N, 3) positions")
        if ids.shape[0] != xyz.shape[0] or views.shape[0] != xyz.shape[0]:
            raise ReconstructionError("column lengths disagree")
        cloud = cls.__new__(cls)
        cloud._ids = ids
        cloud._xyz = xyz
        cloud._views = views
        cloud._points = None
        return cloud

    def __len__(self) -> int:
        return int(self._ids.shape[0])

    def __iter__(self):
        return iter(self.points)

    @property
    def points(self) -> Tuple[CloudPoint, ...]:
        if self._points is None:
            ids, xyz, views = self._ids, self._xyz, self._views
            self._points = tuple(
                CloudPoint(
                    feature_id=int(ids[i]),
                    x=float(xyz[i, 0]),
                    y=float(xyz[i, 1]),
                    z=float(xyz[i, 2]),
                    n_views=int(views[i]),
                )
                for i in range(ids.shape[0])
            )
        return self._points

    @property
    def xyz(self) -> np.ndarray:
        """(N, 3) positions."""
        return self._xyz

    @property
    def feature_ids(self) -> np.ndarray:
        return self._ids

    @property
    def view_counts(self) -> np.ndarray:
        return self._views

    @property
    def artificial_mask(self) -> np.ndarray:
        return (self._ids >= ARTIFICIAL_FEATURE_BASE) & (self._ids < REFLECTION_FEATURE_BASE)

    @property
    def reflection_mask(self) -> np.ndarray:
        return self._ids >= REFLECTION_FEATURE_BASE

    def floor_xy(self) -> np.ndarray:
        """(N, 2) floor-plane projection (what the maps are built from)."""
        return self._xyz[:, :2]

    def subset(self, mask: np.ndarray) -> "PointCloud":
        """Vectorized boolean subset (no per-point Python objects)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._ids.shape[0]:
            raise ReconstructionError("subset mask length mismatch")
        return PointCloud.from_columns(
            self._ids[mask], self._xyz[mask], self._views[mask]
        )

    def without_reflections(self) -> "PointCloud":
        return self.subset(~self.reflection_mask)

    def merged_with(self, other: "PointCloud") -> "PointCloud":
        """Union by feature id; points from ``other`` win on collision.

        Vectorized: concatenate (self first, other second), stable-sort by
        id, and keep the *last* row of every id group — which is always
        ``other``'s row when both clouds carry the id.
        """
        ids = np.concatenate([self._ids, other._ids])
        if ids.shape[0] == 0:
            return PointCloud.empty()
        xyz = np.concatenate([self._xyz, other._xyz], axis=0)
        views = np.concatenate([self._views, other._views])
        order = np.argsort(ids, kind="stable")
        ids, xyz, views = ids[order], xyz[order], views[order]
        # Last occurrence of each id: positions where the next id differs.
        keep = np.empty(ids.shape[0], dtype=bool)
        keep[:-1] = ids[1:] != ids[:-1]
        keep[-1] = True
        return PointCloud.from_columns(ids[keep], xyz[keep], views[keep])

    def bounding_box_2d(self) -> Optional[Tuple[float, float, float, float]]:
        if len(self) == 0:
            return None
        xy = self.floor_xy()
        return (
            float(xy[:, 0].min()),
            float(xy[:, 1].min()),
            float(xy[:, 0].max()),
            float(xy[:, 1].max()),
        )

    @staticmethod
    def empty() -> "PointCloud":
        return PointCloud([])
