"""Point clouds produced by the SfM simulator.

A cloud is a set of 3-D points, each tied to the stable feature id it was
triangulated from and annotated with its view count and provenance
(world / artificial-texture / reflection). The mapping layer consumes the
numpy views; the provenance masks exist for evaluation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReconstructionError
from ..venue.features import ARTIFICIAL_FEATURE_BASE, REFLECTION_FEATURE_BASE


@dataclass(frozen=True)
class CloudPoint:
    """One reconstructed 3-D point."""

    feature_id: int
    x: float
    y: float
    z: float
    n_views: int

    @property
    def is_artificial(self) -> bool:
        """Created from an Algorithm-6 artificial texture."""
        return ARTIFICIAL_FEATURE_BASE <= self.feature_id < REFLECTION_FEATURE_BASE

    @property
    def is_reflection(self) -> bool:
        return self.feature_id >= REFLECTION_FEATURE_BASE


class PointCloud:
    """Immutable collection of reconstructed points with numpy views."""

    def __init__(self, points: Sequence[CloudPoint]):
        self._points: Tuple[CloudPoint, ...] = tuple(points)
        n = len(self._points)
        self._xyz = np.zeros((n, 3), dtype=float)
        self._ids = np.zeros(n, dtype=int)
        self._views = np.zeros(n, dtype=int)
        for i, p in enumerate(self._points):
            self._xyz[i] = (p.x, p.y, p.z)
            self._ids[i] = p.feature_id
            self._views[i] = p.n_views

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def points(self) -> Tuple[CloudPoint, ...]:
        return self._points

    @property
    def xyz(self) -> np.ndarray:
        """(N, 3) positions."""
        return self._xyz

    @property
    def feature_ids(self) -> np.ndarray:
        return self._ids

    @property
    def view_counts(self) -> np.ndarray:
        return self._views

    @property
    def artificial_mask(self) -> np.ndarray:
        return (self._ids >= ARTIFICIAL_FEATURE_BASE) & (self._ids < REFLECTION_FEATURE_BASE)

    @property
    def reflection_mask(self) -> np.ndarray:
        return self._ids >= REFLECTION_FEATURE_BASE

    def floor_xy(self) -> np.ndarray:
        """(N, 2) floor-plane projection (what the maps are built from)."""
        return self._xyz[:, :2]

    def subset(self, mask: np.ndarray) -> "PointCloud":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self._points):
            raise ReconstructionError("subset mask length mismatch")
        return PointCloud([p for p, keep in zip(self._points, mask) if keep])

    def without_reflections(self) -> "PointCloud":
        return self.subset(~self.reflection_mask)

    def merged_with(self, other: "PointCloud") -> "PointCloud":
        """Union by feature id; points from ``other`` win on collision."""
        by_id: Dict[int, CloudPoint] = {p.feature_id: p for p in self._points}
        for p in other.points:
            by_id[p.feature_id] = p
        return PointCloud([by_id[k] for k in sorted(by_id)])

    def bounding_box_2d(self) -> Optional[Tuple[float, float, float, float]]:
        if len(self._points) == 0:
            return None
        xy = self.floor_xy()
        return (
            float(xy[:, 0].min()),
            float(xy[:, 1].min()),
            float(xy[:, 0].max()),
            float(xy[:, 1].max()),
        )

    @staticmethod
    def empty() -> "PointCloud":
        return PointCloud([])
