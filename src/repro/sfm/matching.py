"""Feature matching between photos.

In a real pipeline this is descriptor matching; in the simulator two
observations match exactly when they record the same world feature id
(descriptor noise is already modelled as detection dropout at capture
time). The index below answers the two queries incremental SfM needs:

* how many features two photos share (seed-pair selection), and
* how many of a photo's features are already known to the model
  (registration test).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..camera.photo import Photo


def match_count(a: Photo, b: Photo) -> int:
    """Number of shared feature observations between two photos.

    Set intersection runs in C over the smaller operand, replacing the
    previous per-element membership loop (same result, measured ~5-10x
    faster on realistic feature sets — see tests/test_sfm_matching.py).
    """
    return len(a.feature_id_set() & b.feature_id_set())


class MatchIndex:
    """Inverted index feature_id -> photo_ids for a pool of photos."""

    def __init__(self) -> None:
        self._photos: Dict[int, Photo] = {}
        self._by_feature: Dict[int, Set[int]] = defaultdict(set)

    def add(self, photo: Photo) -> None:
        if photo.photo_id in self._photos:
            return
        self._photos[photo.photo_id] = photo
        for fid in photo.feature_ids:
            self._by_feature[int(fid)].add(photo.photo_id)

    def remove(self, photo_id: int) -> None:
        photo = self._photos.pop(photo_id, None)
        if photo is None:
            return
        for fid in photo.feature_ids:
            observers = self._by_feature.get(int(fid))
            if observers is not None:
                observers.discard(photo_id)
                if not observers:
                    del self._by_feature[int(fid)]

    def __len__(self) -> int:
        return len(self._photos)

    def __contains__(self, photo_id: int) -> bool:
        return photo_id in self._photos

    def photos(self) -> List[Photo]:
        return list(self._photos.values())

    def photo(self, photo_id: int) -> Photo:
        return self._photos[photo_id]

    def observers_of(self, feature_id: int) -> Set[int]:
        return set(self._by_feature.get(feature_id, ()))

    def observers_view(self, feature_id: int):
        """Non-copying view of the observer set (hot-path iteration only).

        Callers must not mutate the returned set; the registration
        wavefront iterates it once per view-mask change.
        """
        return self._by_feature.get(feature_id, ())

    def pair_match_counts(self, photo: Photo) -> Dict[int, int]:
        """Match counts between ``photo`` and every other indexed photo."""
        counts: Dict[int, int] = defaultdict(int)
        for fid in photo.feature_id_set():
            for other_id in self._by_feature.get(fid, ()):
                if other_id != photo.photo_id:
                    counts[other_id] += 1
        return dict(counts)

    def best_seed_pair(self, min_matches: int) -> Optional[Tuple[int, int, int]]:
        """Strongest photo pair (id_a, id_b, matches) above ``min_matches``.

        Scans via the inverted index, so cost is proportional to total
        observation count rather than photo-pair count.
        """
        pair_counts: Dict[Tuple[int, int], int] = defaultdict(int)
        for observers in self._by_feature.values():
            if len(observers) < 2:
                continue
            # Cap very popular features: they add quadratic pair-count work
            # but little discriminative signal for seed selection.
            ordered = sorted(observers)[:40]
            for i in range(len(ordered)):
                for j in range(i + 1, len(ordered)):
                    pair_counts[(ordered[i], ordered[j])] += 1
        best: Optional[Tuple[int, int, int]] = None
        for (a, b), count in pair_counts.items():
            if count >= min_matches and (best is None or count > best[2]):
                best = (a, b, count)
        return best
