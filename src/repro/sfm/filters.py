"""Statistical outlier removal for SfM point clouds.

Algorithm 1 line 2: "we filter the SfM model with Statistical Outlier
Filter to remove any outlier 3D points" (the paper cites the PCL
StatisticalOutlierRemoval tutorial). The classic formulation: compute each
point's mean distance to its k nearest neighbours; points whose mean
distance exceeds ``global_mean + std_ratio * global_std`` are outliers.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..errors import ReconstructionError
from .pointcloud import PointCloud


def sor_mask(
    xyz: np.ndarray, n_neighbors: int = 8, std_ratio: float = 2.0
) -> np.ndarray:
    """Inlier mask for a statistical outlier filter over ``xyz`` (N, 3).

    Returns all-True when the cloud is too small for the neighbourhood
    statistic to be meaningful (fewer than ``n_neighbors + 1`` points).
    """
    xyz = np.asarray(xyz, dtype=float)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ReconstructionError("sor_mask expects an (N, 3) array")
    n = xyz.shape[0]
    if n <= n_neighbors:
        return np.ones(n, dtype=bool)

    tree = cKDTree(xyz)
    # k+1 because the closest neighbour of each point is itself.
    distances, _ = tree.query(xyz, k=n_neighbors + 1)
    mean_dist = distances[:, 1:].mean(axis=1)
    threshold = mean_dist.mean() + std_ratio * mean_dist.std()
    return mean_dist <= threshold


def sor_filter(
    cloud: PointCloud, n_neighbors: int = 8, std_ratio: float = 2.0
) -> PointCloud:
    """Filtered copy of ``cloud`` (Algorithm 1's ``sorFilter``)."""
    if len(cloud) == 0:
        return cloud
    return cloud.subset(sor_mask(cloud.xyz, n_neighbors, std_ratio))
