"""Statistical outlier removal for SfM point clouds.

Algorithm 1 line 2: "we filter the SfM model with Statistical Outlier
Filter to remove any outlier 3D points" (the paper cites the PCL
StatisticalOutlierRemoval tutorial). The classic formulation: compute each
point's mean distance to its k nearest neighbours; points whose mean
distance exceeds ``global_mean + std_ratio * global_std`` are outliers.

Two implementations share that contract:

* :func:`sor_filter` / :func:`sor_mask` — the from-scratch oracle: build a
  fresh cKDTree and query every point, O(N log N) per call;
* :class:`IncrementalSorFilter` — caches each point's k-NN mean distance
  and k-th-neighbour ("influence") distance across calls. When the cloud
  grows by a delta, only the new points and the old points that have some
  new point *inside their influence radius* are re-queried; every other
  point's neighbourhood is provably unchanged (all new points are farther
  than its current k-th neighbour). KD-tree rebuilds are amortized: new
  points accumulate in a side buffer that is queried as a second small
  tree, and the main tree is rebuilt only when the buffer outgrows
  ``rebuild_fraction`` of the cloud. The staleness bound is therefore
  *zero*: masks are bit-identical to :func:`sor_mask` on every call (the
  differential suite pins this), because distances always come from the
  same cKDTree kernel and the global threshold is recomputed over the
  exact per-point means in cloud order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from ..errors import ReconstructionError
from ..obs import NULL_TELEMETRY
from .pointcloud import PointCloud


def sor_mask(
    xyz: np.ndarray, n_neighbors: int = 8, std_ratio: float = 2.0
) -> np.ndarray:
    """Inlier mask for a statistical outlier filter over ``xyz`` (N, 3).

    Returns all-True when the cloud is too small for the neighbourhood
    statistic to be meaningful (fewer than ``n_neighbors + 1`` points).
    """
    xyz = np.asarray(xyz, dtype=float)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ReconstructionError("sor_mask expects an (N, 3) array")
    n = xyz.shape[0]
    if n <= n_neighbors:
        return np.ones(n, dtype=bool)

    tree = cKDTree(xyz)
    # k+1 because the closest neighbour of each point is itself.
    distances, _ = tree.query(xyz, k=n_neighbors + 1)
    mean_dist = distances[:, 1:].mean(axis=1)
    threshold = mean_dist.mean() + std_ratio * mean_dist.std()
    return mean_dist <= threshold


def sor_filter(
    cloud: PointCloud, n_neighbors: int = 8, std_ratio: float = 2.0
) -> PointCloud:
    """Filtered copy of ``cloud`` (Algorithm 1's ``sorFilter``)."""
    if len(cloud) == 0:
        return cloud
    return cloud.subset(sor_mask(cloud.xyz, n_neighbors, std_ratio))


class IncrementalSorFilter:
    """Stateful SOR filter amortized over a growing point cloud.

    Designed for the incremental SfM engine's snapshot clouds: feature-id
    sorted, append-only (ids are never removed and positions never move).
    Any input violating that contract — unsorted ids, removed ids, moved
    points — is detected and served by a transparent full recompute, so
    the filter is safe to call with arbitrary clouds; it is merely *fast*
    for grown ones.
    """

    def __init__(
        self,
        n_neighbors: int = 8,
        std_ratio: float = 2.0,
        rebuild_fraction: float = 0.25,
        telemetry=None,
    ):
        self._k = int(n_neighbors)
        self._ratio = float(std_ratio)
        self._rebuild_fraction = float(rebuild_fraction)
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = obs.metrics
        self._m_requeried = metrics.counter("repro.sfm.sor.points_requeried")
        self._m_reused = metrics.counter("repro.sfm.sor.points_reused")
        self._m_rebuilds = metrics.counter("repro.sfm.sor.tree_rebuilds")
        self._m_full = metrics.counter("repro.sfm.sor.full_recomputes")
        # Cached state, aligned to the order of the last accepted cloud.
        self._ids: Optional[np.ndarray] = None
        self._xyz: Optional[np.ndarray] = None
        self._mean_d: Optional[np.ndarray] = None
        self._kth_d: Optional[np.ndarray] = None
        # Main tree (covers ``_tree_ids``) + ids living in the side buffer.
        self._tree: Optional[cKDTree] = None
        self._tree_ids: Optional[np.ndarray] = None

    # -- public API -------------------------------------------------------------

    def mask(self, cloud: PointCloud) -> np.ndarray:
        """Inlier mask for ``cloud``; bit-identical to :func:`sor_mask`."""
        ids = cloud.feature_ids
        xyz = cloud.xyz
        n = ids.shape[0]
        if n <= self._k:
            # Too small for the statistic; remember nothing so the first
            # adequately-sized cloud takes the full-compute path.
            self._ids = None
            self._mean_d = None
            return np.ones(n, dtype=bool)

        matched = self._match_cached(ids, xyz)
        if matched is None:
            return self._full_compute(ids, xyz)
        return self._delta_compute(ids, xyz, matched)

    def filter(self, cloud: PointCloud) -> PointCloud:
        """Filtered copy of ``cloud`` (incremental ``sorFilter``)."""
        if len(cloud) == 0:
            return cloud
        return cloud.subset(self.mask(cloud))

    # -- internals --------------------------------------------------------------

    def _match_cached(self, ids: np.ndarray, xyz: np.ndarray) -> Optional[np.ndarray]:
        """Positions of the cached points inside the new cloud, or None.

        Returns the (vectorized) index array mapping cached rows to rows
        of the new cloud when the new cloud is a sorted, position-stable
        superset of the cached one; otherwise None (full recompute).
        """
        if self._ids is None or self._mean_d is None:
            return None
        if ids.shape[0] < self._ids.shape[0]:
            return None
        if not np.all(ids[1:] > ids[:-1]):
            return None  # not id-sorted/unique: contract violated
        pos = np.searchsorted(ids, self._ids)
        if pos.shape[0] and pos[-1] >= ids.shape[0]:
            return None
        if not np.array_equal(ids[pos], self._ids):
            return None  # some cached id vanished
        if not np.array_equal(xyz[pos], self._xyz):
            return None  # a cached point moved
        return pos

    def _full_compute(self, ids: np.ndarray, xyz: np.ndarray) -> np.ndarray:
        n = ids.shape[0]
        tree = cKDTree(xyz)
        distances, _ = tree.query(xyz, k=self._k + 1)
        self._m_full.inc()
        self._m_requeried.inc(n)
        self._store(ids, xyz, distances[:, 1:].mean(axis=1), distances[:, self._k])
        self._tree = tree
        self._tree_ids = np.array(ids, dtype=ids.dtype, copy=True)
        return self._threshold_mask()

    def _delta_compute(
        self, ids: np.ndarray, xyz: np.ndarray, matched: np.ndarray
    ) -> np.ndarray:
        n = ids.shape[0]
        mean_d = np.empty(n, dtype=np.float64)
        kth_d = np.empty(n, dtype=np.float64)
        mean_d[matched] = self._mean_d
        kth_d[matched] = self._kth_d
        new_mask = np.ones(n, dtype=bool)
        new_mask[matched] = False
        new_idx = np.nonzero(new_mask)[0]

        if new_idx.shape[0] == 0:
            self._store(ids, xyz, mean_d, kth_d)
            self._m_reused.inc(n)
            return self._threshold_mask()

        # Which old points feel the delta? Exactly those with some new
        # point strictly inside their current k-th-neighbour distance —
        # ties cannot change the k-NN distance multiset, but are included
        # (<=) for robustness at zero extra cost.
        new_tree = cKDTree(xyz[new_idx])
        nearest_new, _ = new_tree.query(xyz[matched], k=1)
        affected = matched[np.asarray(nearest_new) <= kth_d[matched]]
        requery = np.concatenate([new_idx, affected])
        self._m_requeried.inc(int(requery.shape[0]))
        self._m_reused.inc(int(n - requery.shape[0]))

        distances = self._exact_knn(ids, xyz, requery)
        mean_d[requery] = distances[:, 1:].mean(axis=1)
        kth_d[requery] = distances[:, self._k]
        self._store(ids, xyz, mean_d, kth_d)
        self._maybe_rebuild(ids, xyz)
        return self._threshold_mask()

    def _exact_knn(
        self, ids: np.ndarray, xyz: np.ndarray, requery: np.ndarray
    ) -> np.ndarray:
        """Exact (k+1)-NN distances for ``requery`` rows of the full cloud.

        The union of the main tree and the side buffer is the whole
        cloud, so merging their per-row candidate distances and keeping
        the k+1 smallest reproduces a single-tree query exactly (the
        distance between two given points does not depend on which tree
        computed it).
        """
        k1 = self._k + 1
        q = xyz[requery]
        parts = []
        in_tree = np.isin(ids, self._tree_ids, assume_unique=True)
        buffer_idx = np.nonzero(~in_tree)[0]
        tree_n = int(self._tree_ids.shape[0])
        if tree_n:
            d_main, _ = self._tree.query(q, k=min(k1, tree_n))
            if d_main.ndim == 1:
                d_main = d_main.reshape(-1, 1)
            parts.append(d_main)
        if buffer_idx.shape[0]:
            buf_tree = cKDTree(xyz[buffer_idx])
            kb = min(k1, int(buffer_idx.shape[0]))
            d_buf, _ = buf_tree.query(q, k=kb)
            if d_buf.ndim == 1:
                d_buf = d_buf.reshape(-1, 1)
            parts.append(d_buf)
        merged = np.sort(np.concatenate(parts, axis=1), axis=1)[:, :k1]
        return merged

    def _maybe_rebuild(self, ids: np.ndarray, xyz: np.ndarray) -> None:
        n = ids.shape[0]
        n_buffered = n - int(self._tree_ids.shape[0])
        if n_buffered > max(64, int(self._rebuild_fraction * n)):
            self._tree = cKDTree(xyz)
            self._tree_ids = np.array(ids, dtype=ids.dtype, copy=True)
            self._m_rebuilds.inc()

    def _store(
        self, ids: np.ndarray, xyz: np.ndarray, mean_d: np.ndarray, kth_d: np.ndarray
    ) -> None:
        self._ids = np.array(ids, dtype=ids.dtype, copy=True)
        self._xyz = np.array(xyz, dtype=xyz.dtype, copy=True)
        self._mean_d = mean_d
        self._kth_d = kth_d

    def _threshold_mask(self) -> np.ndarray:
        mean_d = self._mean_d
        threshold = mean_d.mean() + self._ratio * mean_d.std()
        return mean_d <= threshold


def sor_filter_incremental(
    cloud: PointCloud, state: IncrementalSorFilter
) -> PointCloud:
    """Incremental ``sorFilter``: like :func:`sor_filter`, amortized O(delta).

    ``state`` carries the k-NN caches between calls; use one instance per
    growing cloud (the pipeline owns one per reconstruction).
    """
    return state.filter(cloud)
