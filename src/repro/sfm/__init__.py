"""SfM substrate: matching, incremental reconstruction, clouds, filtering."""

from .columnar import FeatureColumns, PointColumnStore
from .filters import (
    IncrementalSorFilter,
    sor_filter,
    sor_filter_incremental,
    sor_mask,
)
from .matching import MatchIndex, match_count
from .model import RecoveredCamera, SfmModel
from .pointcloud import CloudPoint, PointCloud
from .reconstruction import IncrementalSfm, RegistrationReport

__all__ = [
    "CloudPoint",
    "FeatureColumns",
    "IncrementalSfm",
    "IncrementalSorFilter",
    "MatchIndex",
    "PointCloud",
    "PointColumnStore",
    "RecoveredCamera",
    "RegistrationReport",
    "SfmModel",
    "match_count",
    "sor_filter",
    "sor_filter_incremental",
    "sor_mask",
]
