"""SfM substrate: matching, incremental reconstruction, clouds, filtering."""

from .filters import sor_filter, sor_mask
from .matching import MatchIndex, match_count
from .model import RecoveredCamera, SfmModel
from .pointcloud import CloudPoint, PointCloud
from .reconstruction import IncrementalSfm, RegistrationReport

__all__ = [
    "CloudPoint",
    "IncrementalSfm",
    "MatchIndex",
    "PointCloud",
    "RecoveredCamera",
    "RegistrationReport",
    "SfmModel",
    "match_count",
    "sor_filter",
    "sor_mask",
]
