"""Incremental SfM reconstruction (simulated).

This engine reproduces the *behavioural contract* of an incremental SfM
pipeline such as OpenMVG, which is what every SnapTask algorithm depends
on:

* photos register into the model only when they share enough matched
  features with already-registered photos (chained registration — a batch
  with no visual overlap with the model stays unregistered, the paper's
  "the new photos were not added to a model" branch);
* a 3-D point appears only once >= 3 registered photos observe the same
  feature ("SfM pipeline that we use needs at least 3 observations of a
  same point to reconstruct it");
* triangulated positions and recovered camera poses carry noise that grows
  with viewing distance;
* previously-unregistrable photos are retried whenever new photos register
  (models "can be updated by adding additional photos").

Triangulation uses the simulator's feature-position oracle plus calibrated
noise rather than multi-view geometry on pixel coordinates — the
substitution documented in DESIGN.md.

Two execution strategies share one public contract (DESIGN.md §"Columnar
SfM core"):

* the default **columnar wavefront** path interns feature ids into a
  dense index (``repro.sfm.columnar``), evaluates the registration test
  as a vectorized gather + bitmask intersect, re-tests only pending
  photos whose features gained new view-mask bits since their last test
  (the registration *wavefront*), triangulates from a dirty-feature
  queue, and snapshots the cloud O(delta) from an append-only column
  store;
* the ``full_rebuild=True`` **escape hatch** preserves the original
  O(model)-per-batch semantics — per-feature dict loops, full pending
  rescans every round, full feature-table triangulation scans, and
  from-scratch ``PointCloud`` construction on every ``model()`` call.

Both paths draw their pose/point noise from *keyed* RNG children
(``pose-<photo>``, ``point-<fid>``), so registration order never perturbs
the draws; the differential suite (tests/test_sfm_equivalence.py) pins
the two strategies bit-identical on clouds, reports and registration
order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..camera.photo import Photo
from ..camera.pose import CameraPose
from ..config import SfmConfig
from ..errors import ReconstructionError
from ..geometry import Vec2, Vec3
from ..obs import NULL_TELEMETRY, Telemetry
from ..simkit.rng import RngStream
from ..venue.features import ARTIFICIAL_FEATURE_BASE, REFLECTION_FEATURE_BASE, FeatureWorld
from .columnar import FeatureColumns, PointColumnStore
from .matching import MatchIndex
from .model import RecoveredCamera, SfmModel
from .pointcloud import CloudPoint, PointCloud

#: Bucket value marking wildcard (viewpoint-insensitive) observations.
WILDCARD_BUCKET = 255


@dataclass(frozen=True)
class RegistrationReport:
    """Outcome of one ``add_photos`` call.

    ``new_point_ids`` / ``new_camera_ids`` are the *deltas* of this call —
    what the incremental map-maintenance engine consumes instead of
    re-deriving the whole model state (see DESIGN.md §5, "incremental map
    maintenance").
    """

    batch_size: int
    newly_registered: int
    still_pending: int
    new_points: int
    total_points: int
    total_cameras: int
    new_point_ids: Tuple[int, ...] = ()
    new_camera_ids: Tuple[int, ...] = ()

    @property
    def any_registered(self) -> bool:
        return self.newly_registered > 0


class IncrementalSfm:
    """Stateful incremental reconstruction over a stream of photo batches."""

    def __init__(
        self,
        world: FeatureWorld,
        config: SfmConfig,
        rng: RngStream,
        telemetry: Optional[Telemetry] = None,
        full_rebuild: bool = False,
    ):
        self._world = world
        self._config = config
        self._rng = rng
        #: From-scratch escape hatch: preserve the original O(model)
        #: per-batch scan semantics (dict state, full rescans, eager
        #: snapshots). The wavefront path must stay bit-identical to it.
        self._scratch = bool(full_rebuild)
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = obs.metrics
        # Per-photo/per-point distributions (DESIGN.md "Observability").
        self._m_registered = metrics.counter("repro.sfm.photos_registered")
        self._m_points_new = metrics.counter("repro.sfm.points_triangulated")
        self._h_overlap = metrics.histogram(
            "repro.sfm.registration_overlap", base=1.0, growth=2.0
        )
        self._h_point_views = metrics.histogram(
            "repro.sfm.point_views", base=1.0, growth=2.0
        )
        self._h_batch_registered = metrics.histogram(
            "repro.sfm.batch_registered", base=1.0, growth=2.0
        )
        # Wavefront/candidate counters (columnar path only).
        self._m_wave_rounds = metrics.counter("repro.sfm.wavefront.rounds")
        self._m_wave_candidates = metrics.counter("repro.sfm.wavefront.candidates")
        self._m_wave_skipped = metrics.counter("repro.sfm.wavefront.skipped")
        self._m_wave_dirtied = metrics.counter("repro.sfm.wavefront.photos_dirtied")
        self._m_tri_dirty = metrics.counter("repro.sfm.triangulation.dirty_features")

        self._pending = MatchIndex()
        self._photos: Dict[int, Photo] = {}
        self._registered: Dict[int, RecoveredCamera] = {}
        # feature id -> photo ids among *registered* photos observing it.
        self._feature_obs: Dict[int, Set[int]] = {}
        # Append-only columnar point store (both strategies; only the
        # snapshot policy differs — see model()).
        self._store = PointColumnStore()
        # Oracle positions for artificial-texture features (Algorithm 6).
        self._artificial_positions: Dict[int, Vec3] = {}
        # Cache of per-feature noise draws so rebuilt clouds are stable.
        self._noise_cache: Dict[int, Tuple[float, float, float]] = {}
        # Scratch strategy: per-feature bitmask dict of the angular buckets
        # registered observers saw it from (the original representation).
        self._view_masks: Dict[int, int] = {}
        # Columnar strategy: dense per-feature state + per-photo columns.
        self._cols = FeatureColumns(self._resolve_feature)
        self._photo_fidx: Dict[int, np.ndarray] = {}
        self._photo_bits: Dict[int, np.ndarray] = {}
        self._photo_sel: Dict[int, np.ndarray] = {}
        self._photo_bucket_cache: Dict[int, np.ndarray] = {}
        # Wavefront state: pending photos whose registration test could
        # have changed since they were last tested.
        self._dirty_pending: Set[int] = set()
        # Triangulation dirty queue: dense feature indices whose observer
        # sets grew (or whose oracle position appeared) since last check.
        self._dirty_features: List[np.ndarray] = []
        # Registration order (photo ids, in the order _register ran).
        self._registration_log: List[int] = []
        # Per-add_photos camera delta (reset each call).
        self._new_camera_ids: List[int] = []

        n_buckets = self._config.view_compat_buckets
        spread = self._config.view_compat_spread
        self._full_mask = (1 << n_buckets) - 1
        self._compat_masks = []
        for b in range(n_buckets):
            mask = 0
            for d in range(-spread, spread + 1):
                mask |= 1 << ((b + d) % n_buckets)
            self._compat_masks.append(mask)
        self._compat_arr = np.asarray(self._compat_masks, dtype=np.int64)

    # -- public state ----------------------------------------------------------

    @property
    def config(self) -> SfmConfig:
        return self._config

    @property
    def full_rebuild(self) -> bool:
        """True when the from-scratch escape hatch is active."""
        return self._scratch

    @property
    def n_registered(self) -> int:
        return len(self._registered)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_points(self) -> int:
        return len(self._store)

    def is_registered(self, photo_id: int) -> bool:
        return photo_id in self._registered

    def registered_ids(self) -> List[int]:
        return sorted(self._registered)

    def registration_log(self) -> Tuple[int, ...]:
        """Photo ids in the exact order they registered (all batches)."""
        return tuple(self._registration_log)

    def pending_ids(self) -> List[int]:
        return sorted(p.photo_id for p in self._pending.photos())

    def register_artificial_features(
        self, ids: Iterable[int], positions: Iterable[Vec3]
    ) -> None:
        """Teach the engine the 3-D positions of imprinted texture features.

        Algorithm 6 creates features that exist only on modified images; the
        engine needs their world positions to triangulate them. Positions
        come from the annotation pipeline's plane fit, so annotation error
        propagates into the reconstructed glass surfaces.
        """
        touched: List[int] = []
        for fid, pos in zip(ids, positions):
            if fid < ARTIFICIAL_FEATURE_BASE:
                raise ReconstructionError(
                    f"feature {fid} is not in the artificial id space"
                )
            fid = int(fid)
            self._artificial_positions[fid] = pos
            # A feature that already had >= min_views observers but no
            # oracle position becomes triangulatable *now*; requeue it so
            # the dirty-feature path re-checks without a new observer.
            dense = self._cols.index_of(fid)
            if dense is not None:
                touched.append(dense)
        if touched:
            self._dirty_features.append(np.asarray(touched, dtype=np.int64))

    # -- reconstruction ----------------------------------------------------------

    def add_photos(self, photos: Iterable[Photo]) -> RegistrationReport:
        """Register a new batch, retrying older pending photos as well."""
        batch = list(photos)
        for photo in batch:
            if photo.photo_id in self._photos:
                raise ReconstructionError(f"photo {photo.photo_id} already added")
            self._photos[photo.photo_id] = photo
            self._pending.add(photo)
            self._dirty_pending.add(photo.photo_id)

        points_start = self._store.n
        self._new_camera_ids = []
        newly_registered = self._run_registration()
        new_point_ids = tuple(sorted(int(f) for f in self._store.ids_slice(points_start)))
        new_camera_ids = tuple(sorted(self._new_camera_ids))
        self._m_registered.inc(newly_registered)
        self._h_batch_registered.record(newly_registered)
        return RegistrationReport(
            batch_size=len(batch),
            newly_registered=newly_registered,
            still_pending=len(self._pending),
            new_points=len(new_point_ids),
            total_points=self._store.n,
            total_cameras=len(self._registered),
            new_point_ids=new_point_ids,
            new_camera_ids=new_camera_ids,
        )

    def model(self) -> SfmModel:
        """Snapshot of the current reconstruction.

        Columnar path: O(delta) — the store's frozen sorted columns are
        shared with the returned cloud (copy-on-write). Escape hatch:
        from-scratch per-point rebuild, as the original engine did.
        """
        if self._scratch:
            points = [
                CloudPoint(fid, x, y, z, views)
                for fid, x, y, z, views in sorted(self._store.rows())
            ]
            cloud = PointCloud(points)
        else:
            ids, xyz, views = self._store.sorted_columns()
            cloud = PointCloud.from_columns(ids, xyz, views)
        return SfmModel(cloud, list(self._registered.values()))

    # -- internals ---------------------------------------------------------------

    def _run_registration(self) -> int:
        """Drive registration to a fixpoint; returns #newly registered.

        Wavefront invariant (columnar path): a pending photo is re-tested
        only when some feature it observes gained a new view-mask bit
        since the photo's last test. View masks only ever *gain* bits, so
        a photo skipped this round would have produced exactly the same
        (non-registrable) overlap as its last test — skipping is
        behaviour-preserving, which the differential suite pins against
        the full-rescan escape hatch.
        """
        registered_count = 0
        if not self._registered:
            registered_count += self._bootstrap()
        scratch = self._scratch
        progress = True
        while progress:
            progress = False
            if scratch:
                candidates = self._pending.photos()
            else:
                candidate_ids = sorted(self._dirty_pending)
                candidates = [self._pending.photo(pid) for pid in candidate_ids]
                self._m_wave_rounds.inc()
                self._m_wave_candidates.inc(len(candidates))
                self._m_wave_skipped.inc(len(self._pending) - len(candidates))
            registrable: List[Photo] = []
            for photo in candidates:
                overlap = self._compatible_overlap(photo)
                if self._registrable(photo, overlap):
                    registrable.append(photo)
                    self._h_overlap.record(overlap)
                elif not scratch:
                    # Clean until some feature of this photo gains a bit.
                    self._dirty_pending.discard(photo.photo_id)
            for photo in sorted(registrable, key=lambda p: p.photo_id):
                self._register(photo)
                registered_count += 1
                progress = True
            if not progress:
                rig_registered = self._register_rigs()
                registered_count += rig_registered
                progress = rig_registered > 0
        self._triangulate()
        return registered_count

    def _register_rigs(self) -> int:
        """Rig fallback for texture-sharing photo groups (Algorithm 6).

        Photos carrying the same imprinted texture are rigidly related by
        hundreds of texture correspondences; jointly they register when
        their combined world-feature matches reach the (small) rig anchor
        threshold, even if no single photo clears the solo threshold.
        """
        from collections import defaultdict

        from ..annotation.textures import FEATURES_PER_TEXTURE

        rigs = defaultdict(list)
        if self._scratch:
            known = set(self._feature_obs)
            for photo in self._pending.photos():
                artificial = [
                    int(f)
                    for f in photo.feature_ids
                    if ARTIFICIAL_FEATURE_BASE <= f < REFLECTION_FEATURE_BASE
                ]
                if len(artificial) < self._config.rig_texture_matches:
                    continue
                texture_block = (artificial[0] - ARTIFICIAL_FEATURE_BASE) // FEATURES_PER_TEXTURE
                rigs[texture_block].append(photo)
        else:
            for photo in self._pending.photos():
                fidx = self._photo_columns(photo)[0]
                wild = self._cols.wildcard[fidx]
                if int(np.count_nonzero(wild)) < self._config.rig_texture_matches:
                    continue
                first = int(photo.feature_ids[int(np.argmax(wild))])
                texture_block = (first - ARTIFICIAL_FEATURE_BASE) // FEATURES_PER_TEXTURE
                rigs[texture_block].append(photo)

        registered = 0
        for _block, photos in sorted(rigs.items()):
            if len(photos) < 2:
                continue
            if self._scratch:
                union_matches = set()
                for photo in photos:
                    union_matches |= {
                        f
                        for f in photo.feature_id_set()
                        if f < ARTIFICIAL_FEATURE_BASE and f in known
                    }
                n_union = len(union_matches)
            else:
                chunks = []
                for photo in photos:
                    fidx = self._photo_columns(photo)[0]
                    fids = photo.feature_ids
                    anchored = (fids < ARTIFICIAL_FEATURE_BASE) & (
                        self._cols.obs_count[fidx] > 0
                    )
                    chunks.append(fids[anchored])
                n_union = int(np.unique(np.concatenate(chunks)).shape[0]) if chunks else 0
            if n_union >= self._config.min_rig_anchor_matches:
                for photo in sorted(photos, key=lambda p: p.photo_id):
                    self._register(photo)
                    registered += 1
        return registered

    def _feature_position_fast(self, fid: int):
        if fid >= ARTIFICIAL_FEATURE_BASE and fid < REFLECTION_FEATURE_BASE:
            pos = self._artificial_positions.get(fid)
            return (pos.x, pos.y) if pos is not None else None
        feature = self._world.feature(fid)
        return (feature.position.x, feature.position.y)

    def _resolve_feature(self, fid: int) -> Tuple[float, float, bool]:
        """Intern-time classification for :class:`FeatureColumns`.

        Artificial-texture ids are wildcards (viewpoint-insensitive, no
        stable floor position); everything else — world features and
        mirrored reflections — resolves to its oracle floor position.
        """
        if ARTIFICIAL_FEATURE_BASE <= fid < REFLECTION_FEATURE_BASE:
            return (0.0, 0.0, True)
        feature = self._world.feature(fid)
        return (feature.position.x, feature.position.y, False)

    def _photo_columns(
        self, photo: Photo
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(dense idx, buckets, or-bits, compat-select) for one photo, cached.

        Buckets reproduce the original scalar formula elementwise:
        ``int((atan2(cy - fy, cx - fx) + pi) / (2 pi) * n) % n`` with 255
        marking wildcard observations; the vectorized arctan2/truncation
        is bit-identical to ``math.atan2`` + ``int()`` on the same floats
        (pinned by tests/test_sfm_equivalence.py).
        """
        pid = photo.photo_id
        fidx = self._photo_fidx.get(pid)
        if fidx is not None:
            return (
                fidx,
                self._photo_bucket_cache[pid],
                self._photo_bits[pid],
                self._photo_sel[pid],
            )
        n_buckets = self._config.view_compat_buckets
        fidx = self._cols.intern_many(photo.feature_ids)
        wild = self._cols.wildcard[fidx]
        cx = photo.true_pose.position.x
        cy = photo.true_pose.position.y
        dx = np.where(wild, 1.0, cx - self._cols.x[fidx])
        dy = np.where(wild, 0.0, cy - self._cols.y[fidx])
        angle = np.arctan2(dy, dx)
        raw = ((angle + np.pi) / (2.0 * np.pi) * n_buckets).astype(np.int64) % n_buckets
        buckets = np.where(wild, WILDCARD_BUCKET, raw).astype(np.uint8)
        bits = np.where(wild, self._full_mask, np.int64(1) << raw)
        sel = np.where(wild, self._full_mask, self._compat_arr[raw])
        self._photo_fidx[pid] = fidx
        self._photo_bucket_cache[pid] = buckets
        self._photo_bits[pid] = bits
        self._photo_sel[pid] = sel
        return fidx, buckets, bits, sel

    def _buckets_for(self, photo: Photo) -> np.ndarray:
        """Angular bucket of the camera as seen from each observed feature.

        255 marks wildcard observations (artificial-texture matches are
        viewpoint-insensitive: the imprinted pattern is identical in every
        photo of the set).
        """
        return self._photo_columns(photo)[1]

    def _compatible_overlap(self, photo: Photo) -> int:
        """Matches against the model restricted to compatible viewpoints.

        A real pipeline cannot match descriptors across wide baselines: a
        feature only matches if some registered photo observed it from a
        nearby direction. Columnar path: one gather + bitmask intersect
        over the photo's dense feature indices (a zero view mask means the
        feature is unknown to the model, so ``mask & sel`` is zero for
        exactly the observations the original dict loop skipped).
        """
        if not self._scratch:
            fidx, _buckets, _bits, sel = self._photo_columns(photo)
            masks = self._cols.view_mask[fidx]
            return int(np.count_nonzero(masks & sel))
        buckets = self._buckets_for(photo)
        masks = self._view_masks
        compat = self._compat_masks
        count = 0
        for fid, bucket in zip(photo.feature_ids, buckets):
            mask = masks.get(int(fid))
            if mask is None:
                continue
            if bucket == WILDCARD_BUCKET or mask & compat[bucket]:
                count += 1
        return count

    def _registrable(self, photo: Photo, overlap: int) -> bool:
        """Registration test: enough absolute matches, or a feature-poor
        photo whose matches are nearly all of its detections."""
        if overlap >= self._config.min_registration_matches:
            return True
        if photo.n_features == 0:
            return False
        ratio = overlap / photo.n_features
        return (
            overlap >= self._config.min_ratio_matches
            and ratio >= self._config.registration_inlier_ratio
        )

    def _bootstrap(self) -> int:
        """Seed the model from the strongest pending photo pair."""
        seed = self._pending.best_seed_pair(self._config.min_pair_matches)
        if seed is None:
            return 0
        id_a, id_b, _matches = seed
        self._register(self._pending.photo(id_a))
        self._register(self._pending.photo(id_b))
        return 2

    def _register(self, photo: Photo) -> None:
        pid = photo.photo_id
        fidx, buckets, bits, _sel = self._photo_columns(photo)
        self._pending.remove(pid)
        self._dirty_pending.discard(pid)
        pose = self._recover_pose(photo)
        self._registered[pid] = RecoveredCamera(
            photo_id=pid,
            pose=pose,
            intrinsics=photo.exif.intrinsics(),
            n_inliers=photo.n_features,
            observed_feature_ids=photo.feature_ids.copy(),
        )
        self._registration_log.append(pid)
        self._new_camera_ids.append(pid)
        for fid in photo.feature_ids:
            self._feature_obs.setdefault(int(fid), set()).add(pid)
        if self._scratch:
            full = self._full_mask
            for fid, bucket in zip(photo.feature_ids, buckets):
                fid = int(fid)
                if bucket == WILDCARD_BUCKET:
                    self._view_masks[fid] = full
                else:
                    self._view_masks[fid] = self._view_masks.get(fid, 0) | (1 << int(bucket))
            return
        # Columnar path: vectorized mask update + wavefront propagation.
        cols = self._cols
        old = cols.view_mask[fidx].copy()
        np.bitwise_or.at(cols.view_mask, fidx, bits)
        np.add.at(cols.obs_count, fidx, 1)
        self._dirty_features.append(fidx)
        gained = fidx[cols.view_mask[fidx] != old]
        if gained.shape[0]:
            dirty = self._dirty_pending
            observers = self._pending.observers_view
            dirtied = 0
            for fid in cols.ids_of(np.unique(gained)):
                for other in observers(int(fid)):
                    if other not in dirty:
                        dirty.add(other)
                        dirtied += 1
            if dirtied:
                self._m_wave_dirtied.inc(dirtied)

    def _recover_pose(self, photo: Photo) -> CameraPose:
        """True pose + calibrated recovery noise (bundle-adjustment error)."""
        rng = self._rng.child(f"pose-{photo.photo_id}")
        true = photo.true_pose
        offset = Vec2(
            rng.normal(0.0, self._config.camera_pose_noise_m),
            rng.normal(0.0, self._config.camera_pose_noise_m),
        )
        yaw = true.yaw_rad + math.radians(
            rng.normal(0.0, self._config.camera_yaw_noise_deg)
        )
        return CameraPose(true.position + offset, yaw, true.height_m)

    def _triangulate(self) -> None:
        """Create points for features with enough registered observations.

        Columnar path: only features whose observer set grew (or whose
        oracle position was registered) since the last fixpoint are
        checked; the escape hatch scans the whole observation table as the
        original engine did.
        """
        min_views = self._config.min_views_per_point
        if self._scratch:
            cols = self._cols
            for fid, observers in self._feature_obs.items():
                dense = cols.index_of(fid)
                if dense is not None and cols.has_point[dense]:
                    continue
                if len(observers) < min_views:
                    continue
                self._make_point(fid, dense, observers)
            return
        if not self._dirty_features:
            return
        dirty = np.unique(np.concatenate(self._dirty_features))
        self._dirty_features.clear()
        self._m_tri_dirty.inc(int(dirty.shape[0]))
        cols = self._cols
        ready = dirty[(~cols.has_point[dirty]) & (cols.obs_count[dirty] >= min_views)]
        for dense in ready:
            fid = int(cols.ids[dense])
            self._make_point(fid, int(dense), self._feature_obs[fid])

    def _make_point(self, fid: int, dense: Optional[int], observers: Set[int]) -> None:
        position = self._feature_position(fid)
        if position is None:
            return  # artificial feature whose oracle position is not known yet
        noisy = self._noisy_position(fid, position, observers)
        self._m_points_new.inc()
        self._h_point_views.record(len(observers))
        self._store.append(fid, noisy[0], noisy[1], noisy[2], len(observers))
        if dense is not None:
            self._cols.has_point[dense] = True

    def _feature_position(self, fid: int) -> Optional[Vec3]:
        if fid >= ARTIFICIAL_FEATURE_BASE:
            return self._artificial_positions.get(fid)
        return self._world.feature(fid).position

    def _noisy_position(
        self, fid: int, position: Vec3, observers: Set[int]
    ) -> Tuple[float, float, float]:
        if fid not in self._noise_cache:
            mean_dist = self._mean_view_distance(position, observers)
            sigma = (
                self._config.point_noise_sigma_m
                + self._config.point_noise_range_gain * mean_dist
            )
            rng = self._rng.child(f"point-{fid}")
            self._noise_cache[fid] = (
                rng.normal(0.0, sigma),
                rng.normal(0.0, sigma),
                rng.normal(0.0, sigma),
            )
        nx, ny, nz = self._noise_cache[fid]
        return (position.x + nx, position.y + ny, position.z + nz)

    def _mean_view_distance(self, position: Vec3, observers: Set[int]) -> float:
        target = Vec2(position.x, position.y)
        dists = [
            self._registered[pid].pose.position.distance_to(target)
            for pid in observers
            if pid in self._registered
        ]
        return sum(dists) / len(dists) if dists else 0.0
