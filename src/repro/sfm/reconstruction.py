"""Incremental SfM reconstruction (simulated).

This engine reproduces the *behavioural contract* of an incremental SfM
pipeline such as OpenMVG, which is what every SnapTask algorithm depends
on:

* photos register into the model only when they share enough matched
  features with already-registered photos (chained registration — a batch
  with no visual overlap with the model stays unregistered, the paper's
  "the new photos were not added to a model" branch);
* a 3-D point appears only once >= 3 registered photos observe the same
  feature ("SfM pipeline that we use needs at least 3 observations of a
  same point to reconstruct it");
* triangulated positions and recovered camera poses carry noise that grows
  with viewing distance;
* previously-unregistrable photos are retried whenever new photos register
  (models "can be updated by adding additional photos").

Triangulation uses the simulator's feature-position oracle plus calibrated
noise rather than multi-view geometry on pixel coordinates — the
substitution documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..camera.photo import Photo
from ..camera.pose import CameraPose
from ..config import SfmConfig
from ..errors import ReconstructionError
from ..geometry import Vec2, Vec3
from ..obs import NULL_TELEMETRY, Telemetry
from ..simkit.rng import RngStream
from ..venue.features import ARTIFICIAL_FEATURE_BASE, REFLECTION_FEATURE_BASE, FeatureWorld
from .matching import MatchIndex
from .model import RecoveredCamera, SfmModel
from .pointcloud import CloudPoint, PointCloud


@dataclass(frozen=True)
class RegistrationReport:
    """Outcome of one ``add_photos`` call.

    ``new_point_ids`` / ``new_camera_ids`` are the *deltas* of this call —
    what the incremental map-maintenance engine consumes instead of
    re-deriving the whole model state (see DESIGN.md §5, "incremental map
    maintenance").
    """

    batch_size: int
    newly_registered: int
    still_pending: int
    new_points: int
    total_points: int
    total_cameras: int
    new_point_ids: Tuple[int, ...] = ()
    new_camera_ids: Tuple[int, ...] = ()

    @property
    def any_registered(self) -> bool:
        return self.newly_registered > 0


class IncrementalSfm:
    """Stateful incremental reconstruction over a stream of photo batches."""

    def __init__(
        self,
        world: FeatureWorld,
        config: SfmConfig,
        rng: RngStream,
        telemetry: Optional[Telemetry] = None,
    ):
        self._world = world
        self._config = config
        self._rng = rng
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = obs.metrics
        # Per-photo/per-point distributions (DESIGN.md "Observability").
        self._m_registered = metrics.counter("repro.sfm.photos_registered")
        self._m_points_new = metrics.counter("repro.sfm.points_triangulated")
        self._h_overlap = metrics.histogram(
            "repro.sfm.registration_overlap", base=1.0, growth=2.0
        )
        self._h_point_views = metrics.histogram(
            "repro.sfm.point_views", base=1.0, growth=2.0
        )
        self._h_batch_registered = metrics.histogram(
            "repro.sfm.batch_registered", base=1.0, growth=2.0
        )
        self._pending = MatchIndex()
        self._photos: Dict[int, Photo] = {}
        self._registered: Dict[int, RecoveredCamera] = {}
        # feature id -> photo ids among *registered* photos observing it.
        self._feature_obs: Dict[int, Set[int]] = {}
        # feature id -> reconstructed point (created at >= min_views).
        self._points: Dict[int, CloudPoint] = {}
        # Oracle positions for artificial-texture features (Algorithm 6).
        self._artificial_positions: Dict[int, Vec3] = {}
        # Cache of per-feature noise draws so rebuilt clouds are stable.
        self._noise_cache: Dict[int, Tuple[float, float, float]] = {}
        # Viewpoint-compatible matching state: per-feature bitmask of the
        # angular buckets registered observers saw it from, and per-photo
        # cached buckets for each of its observations.
        self._view_masks: Dict[int, int] = {}
        self._photo_bucket_cache: Dict[int, np.ndarray] = {}
        n_buckets = self._config.view_compat_buckets
        spread = self._config.view_compat_spread
        self._compat_masks = []
        for b in range(n_buckets):
            mask = 0
            for d in range(-spread, spread + 1):
                mask |= 1 << ((b + d) % n_buckets)
            self._compat_masks.append(mask)

    # -- public state ----------------------------------------------------------

    @property
    def config(self) -> SfmConfig:
        return self._config

    @property
    def n_registered(self) -> int:
        return len(self._registered)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_points(self) -> int:
        return len(self._points)

    def is_registered(self, photo_id: int) -> bool:
        return photo_id in self._registered

    def registered_ids(self) -> List[int]:
        return sorted(self._registered)

    def pending_ids(self) -> List[int]:
        return sorted(p.photo_id for p in self._pending.photos())

    def register_artificial_features(
        self, ids: Iterable[int], positions: Iterable[Vec3]
    ) -> None:
        """Teach the engine the 3-D positions of imprinted texture features.

        Algorithm 6 creates features that exist only on modified images; the
        engine needs their world positions to triangulate them. Positions
        come from the annotation pipeline's plane fit, so annotation error
        propagates into the reconstructed glass surfaces.
        """
        for fid, pos in zip(ids, positions):
            if fid < ARTIFICIAL_FEATURE_BASE:
                raise ReconstructionError(
                    f"feature {fid} is not in the artificial id space"
                )
            self._artificial_positions[int(fid)] = pos

    # -- reconstruction ----------------------------------------------------------

    def add_photos(self, photos: Iterable[Photo]) -> RegistrationReport:
        """Register a new batch, retrying older pending photos as well."""
        batch = list(photos)
        for photo in batch:
            if photo.photo_id in self._photos:
                raise ReconstructionError(f"photo {photo.photo_id} already added")
            self._photos[photo.photo_id] = photo
            self._pending.add(photo)

        points_before = set(self._points)
        cameras_before = set(self._registered)
        newly_registered = self._run_registration()
        new_point_ids = tuple(
            sorted(fid for fid in self._points if fid not in points_before)
        )
        new_camera_ids = tuple(
            sorted(pid for pid in self._registered if pid not in cameras_before)
        )
        self._m_registered.inc(newly_registered)
        self._h_batch_registered.record(newly_registered)
        return RegistrationReport(
            batch_size=len(batch),
            newly_registered=newly_registered,
            still_pending=len(self._pending),
            new_points=len(new_point_ids),
            total_points=len(self._points),
            total_cameras=len(self._registered),
            new_point_ids=new_point_ids,
            new_camera_ids=new_camera_ids,
        )

    def model(self) -> SfmModel:
        """Snapshot of the current reconstruction."""
        cloud = PointCloud([self._points[k] for k in sorted(self._points)])
        return SfmModel(cloud, list(self._registered.values()))

    # -- internals ---------------------------------------------------------------

    def _run_registration(self) -> int:
        """Drive registration to a fixpoint; returns #newly registered."""
        registered_count = 0
        if not self._registered:
            registered_count += self._bootstrap()
        progress = True
        while progress:
            progress = False
            registrable: List[Photo] = []
            for photo in self._pending.photos():
                overlap = self._compatible_overlap(photo)
                if self._registrable(photo, overlap):
                    registrable.append(photo)
                    self._h_overlap.record(overlap)
            for photo in sorted(registrable, key=lambda p: p.photo_id):
                self._register(photo)
                registered_count += 1
                progress = True
            if not progress:
                progress = self._register_rigs() > 0
                registered_count += 1 if progress else 0
        self._triangulate()
        return registered_count

    def _register_rigs(self) -> int:
        """Rig fallback for texture-sharing photo groups (Algorithm 6).

        Photos carrying the same imprinted texture are rigidly related by
        hundreds of texture correspondences; jointly they register when
        their combined world-feature matches reach the (small) rig anchor
        threshold, even if no single photo clears the solo threshold.
        """
        from collections import defaultdict

        from ..annotation.textures import FEATURES_PER_TEXTURE

        known = set(self._feature_obs)
        rigs = defaultdict(list)
        for photo in self._pending.photos():
            artificial = [
                int(f)
                for f in photo.feature_ids
                if ARTIFICIAL_FEATURE_BASE <= f < REFLECTION_FEATURE_BASE
            ]
            if len(artificial) < self._config.rig_texture_matches:
                continue
            texture_block = (artificial[0] - ARTIFICIAL_FEATURE_BASE) // FEATURES_PER_TEXTURE
            rigs[texture_block].append(photo)

        registered = 0
        for _block, photos in sorted(rigs.items()):
            if len(photos) < 2:
                continue
            union_matches = set()
            for photo in photos:
                union_matches |= {
                    f
                    for f in photo.feature_id_set()
                    if f < ARTIFICIAL_FEATURE_BASE and f in known
                }
            if len(union_matches) >= self._config.min_rig_anchor_matches:
                for photo in sorted(photos, key=lambda p: p.photo_id):
                    self._register(photo)
                    registered += 1
        return registered

    def _feature_position_fast(self, fid: int):
        if fid >= ARTIFICIAL_FEATURE_BASE and fid < REFLECTION_FEATURE_BASE:
            pos = self._artificial_positions.get(fid)
            return (pos.x, pos.y) if pos is not None else None
        feature = self._world.feature(fid)
        return (feature.position.x, feature.position.y)

    def _buckets_for(self, photo: Photo) -> np.ndarray:
        """Angular bucket of the camera as seen from each observed feature.

        255 marks wildcard observations (artificial-texture matches are
        viewpoint-insensitive: the imprinted pattern is identical in every
        photo of the set).
        """
        cached = self._photo_bucket_cache.get(photo.photo_id)
        if cached is not None:
            return cached
        n_buckets = self._config.view_compat_buckets
        cx = photo.true_pose.position.x
        cy = photo.true_pose.position.y
        buckets = np.full(photo.n_features, 255, dtype=np.uint8)
        for i, fid in enumerate(photo.feature_ids):
            fid = int(fid)
            if ARTIFICIAL_FEATURE_BASE <= fid < REFLECTION_FEATURE_BASE:
                continue  # wildcard
            xy = self._feature_position_fast(fid)
            if xy is None:
                continue
            angle = math.atan2(cy - xy[1], cx - xy[0])
            buckets[i] = int((angle + math.pi) / (2.0 * math.pi) * n_buckets) % n_buckets
        self._photo_bucket_cache[photo.photo_id] = buckets
        return buckets

    def _compatible_overlap(self, photo: Photo) -> int:
        """Matches against the model restricted to compatible viewpoints.

        A real pipeline cannot match descriptors across wide baselines: a
        feature only matches if some registered photo observed it from a
        nearby direction.
        """
        buckets = self._buckets_for(photo)
        masks = self._view_masks
        compat = self._compat_masks
        count = 0
        for fid, bucket in zip(photo.feature_ids, buckets):
            mask = masks.get(int(fid))
            if mask is None:
                continue
            if bucket == 255 or mask & compat[bucket]:
                count += 1
        return count

    def _registrable(self, photo: Photo, overlap: int) -> bool:
        """Registration test: enough absolute matches, or a feature-poor
        photo whose matches are nearly all of its detections."""
        if overlap >= self._config.min_registration_matches:
            return True
        if photo.n_features == 0:
            return False
        ratio = overlap / photo.n_features
        return (
            overlap >= self._config.min_ratio_matches
            and ratio >= self._config.registration_inlier_ratio
        )

    def _bootstrap(self) -> int:
        """Seed the model from the strongest pending photo pair."""
        seed = self._pending.best_seed_pair(self._config.min_pair_matches)
        if seed is None:
            return 0
        id_a, id_b, _matches = seed
        self._register(self._pending.photo(id_a))
        self._register(self._pending.photo(id_b))
        return 2

    def _register(self, photo: Photo) -> None:
        self._pending.remove(photo.photo_id)
        pose = self._recover_pose(photo)
        self._registered[photo.photo_id] = RecoveredCamera(
            photo_id=photo.photo_id,
            pose=pose,
            intrinsics=photo.exif.intrinsics(),
            n_inliers=photo.n_features,
            observed_feature_ids=photo.feature_ids.copy(),
        )
        buckets = self._buckets_for(photo)
        for fid, bucket in zip(photo.feature_ids, buckets):
            fid = int(fid)
            self._feature_obs.setdefault(fid, set()).add(photo.photo_id)
            if bucket == 255:
                self._view_masks[fid] = (1 << self._config.view_compat_buckets) - 1
            else:
                self._view_masks[fid] = self._view_masks.get(fid, 0) | (1 << int(bucket))

    def _recover_pose(self, photo: Photo) -> CameraPose:
        """True pose + calibrated recovery noise (bundle-adjustment error)."""
        rng = self._rng.child(f"pose-{photo.photo_id}")
        true = photo.true_pose
        offset = Vec2(
            rng.normal(0.0, self._config.camera_pose_noise_m),
            rng.normal(0.0, self._config.camera_pose_noise_m),
        )
        yaw = true.yaw_rad + math.radians(
            rng.normal(0.0, self._config.camera_yaw_noise_deg)
        )
        return CameraPose(true.position + offset, yaw, true.height_m)

    def _triangulate(self) -> None:
        """Create points for features with enough registered observations."""
        for fid, observers in self._feature_obs.items():
            if fid in self._points:
                continue
            if len(observers) < self._config.min_views_per_point:
                continue
            position = self._feature_position(fid)
            if position is None:
                continue
            noisy = self._noisy_position(fid, position, observers)
            self._m_points_new.inc()
            self._h_point_views.record(len(observers))
            self._points[fid] = CloudPoint(
                feature_id=fid,
                x=noisy[0],
                y=noisy[1],
                z=noisy[2],
                n_views=len(observers),
            )

    def _feature_position(self, fid: int) -> Optional[Vec3]:
        if fid >= ARTIFICIAL_FEATURE_BASE:
            return self._artificial_positions.get(fid)
        return self._world.feature(fid).position

    def _noisy_position(
        self, fid: int, position: Vec3, observers: Set[int]
    ) -> Tuple[float, float, float]:
        if fid not in self._noise_cache:
            mean_dist = self._mean_view_distance(position, observers)
            sigma = (
                self._config.point_noise_sigma_m
                + self._config.point_noise_range_gain * mean_dist
            )
            rng = self._rng.child(f"point-{fid}")
            self._noise_cache[fid] = (
                rng.normal(0.0, sigma),
                rng.normal(0.0, sigma),
                rng.normal(0.0, sigma),
            )
        nx, ny, nz = self._noise_cache[fid]
        return (position.x + nx, position.y + ny, position.z + nz)

    def _mean_view_distance(self, position: Vec3, observers: Set[int]) -> float:
        target = Vec2(position.x, position.y)
        dists = [
            self._registered[pid].pose.position.distance_to(target)
            for pid in observers
            if pid in self._registered
        ]
        return sum(dists) / len(dists) if dists else 0.0
