"""Setup shim for offline editable installs (no `wheel` package available).

`pip install -e . --no-build-isolation --no-use-pep517` uses this file;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
