#!/usr/bin/env python3
"""The paper's full field test (Sec. V): guided vs unguided vs opportunistic.

Reproduces the evaluation end to end on the library replica:

1. the guided SnapTask campaign runs until the backend declares the venue
   covered (Figs. 9-10, Table I);
2. the unguided-participatory and opportunistic datasets are collected and
   evaluated incrementally in 100-photo splits (Fig. 11);
3. the final maps and headline deltas are printed (Fig. 12).

This is the long example (~1 minute).  Run:
    python examples/library_field_test.py
"""

import time

from repro.eval import (
    Workbench,
    format_final_comparison,
    format_series_rows,
    format_table1,
    run_guided_experiment,
    run_opportunistic_experiment,
    run_unguided_experiment,
)
from repro.mapping import render_ascii


def main() -> None:
    t0 = time.time()
    print("== guided (SnapTask) campaign ==")
    bench = Workbench.for_library()
    guided = run_guided_experiment(bench, max_tasks=120)
    print(
        f"venue covered: {guided.run.venue_covered}; "
        f"{guided.n_photo_tasks} photo tasks, {guided.n_annotation_tasks} annotation tasks"
    )
    print(format_series_rows(guided.series))
    print()
    print(format_table1(guided.featureless))
    print()

    print("== unguided participatory baseline ==")
    unguided = run_unguided_experiment(Workbench.for_library())
    print(format_series_rows(unguided.series))
    print()

    print("== opportunistic baseline ==")
    opportunistic = run_opportunistic_experiment(Workbench.for_library())
    print(format_series_rows(opportunistic.series))
    print()

    print("== final comparison (Fig. 12) ==")
    print(
        format_final_comparison(
            [
                ("SnapTask", guided.final),
                ("Unguided participatory", unguided.series.final),
                ("Opportunistic", opportunistic.series.final),
            ],
            paper_values={
                "SnapTask": "98.12%",
                "unguided": "77.4%",
                "opportunistic": "63.67%",
            },
        )
    )
    print()
    print("SnapTask final floor plan:")
    print(render_ascii(guided.final_maps, bench.ground_truth.region_mask, max_width=100))
    print()
    delta_u = guided.final.coverage_percent - unguided.series.final.coverage_percent
    delta_o = guided.final.coverage_percent - opportunistic.series.final.coverage_percent
    print(f"coverage gain over unguided:      +{delta_u:.2f} points (paper: +20.72)")
    print(f"coverage gain over opportunistic: +{delta_o:.2f} points (paper: +34.45)")
    print(f"total wall time: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
