#!/usr/bin/env python3
"""Quickstart: map a venue with SnapTask in a few dozen lines.

Builds the paper's library replica, bootstraps an initial model at the
entrance, lets the backend generate a handful of guided tasks, and prints
the resulting floor plan with its coverage score.

Run:  python examples/quickstart.py
"""

from repro.eval import Workbench, run_guided_experiment
from repro.mapping import render_ascii


def main() -> None:
    # A Workbench bundles the venue, its feature world, ground truth and a
    # deterministic capture simulator (seeded from the config).
    bench = Workbench.for_library()
    print(bench.venue.describe())
    print(f"world features: {len(bench.world)}")
    print()

    # Run a short guided campaign: bootstrap at the entrance, then follow
    # the backend's tasks (Algorithm 1) for up to 12 tasks.
    print("running a short guided campaign (12 tasks)...")
    result = run_guided_experiment(bench, max_tasks=12)

    final = result.series.final
    print(f"photo tasks executed:      {result.n_photo_tasks}")
    print(f"annotation tasks executed: {result.n_annotation_tasks}")
    print(f"photos collected:          {final.n_photos}")
    print(f"model coverage:            {final.coverage_percent:.2f}%")
    print(f"outer bounds reconstructed: {final.bounds_percent:.2f}%")
    print()
    print("floor plan ('#' obstacles, '.' camera-covered, '~' outside):")
    print(render_ascii(result.final_maps, bench.ground_truth.region_mask, max_width=100))


if __name__ == "__main__":
    main()
