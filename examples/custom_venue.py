#!/usr/bin/env python3
"""Map a venue SnapTask was never tuned for.

Generates a random office floor plan (different size, furniture and glass
layout than the library), runs a short guided campaign on it, and prints
the floor plan — demonstrating that the public API works on arbitrary
venues, not just the paper's evaluation site.

Run:  python examples/custom_venue.py [seed]
"""

import sys

from repro.eval import Workbench, run_guided_experiment
from repro.mapping import render_ascii
from repro.simkit import RngStream
from repro.venue import OfficeSpec, generate_office


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    spec = OfficeSpec(
        width_m=16.0,
        depth_m=11.0,
        glass_walls=2,
        n_furniture=7,
        n_hotspots=5,
    )
    office = generate_office(spec, RngStream(seed, "custom-venue"))
    print(office.describe())

    bench = Workbench(office)
    print(f"world features: {len(bench.world)}; grid {bench.spec.shape}")
    print()

    print("running a guided campaign (up to 25 tasks)...")
    result = run_guided_experiment(bench, max_tasks=25)
    final = result.series.final

    print(f"venue covered:   {result.run.venue_covered}")
    print(f"photo tasks:     {result.n_photo_tasks}")
    print(f"annotation tasks: {result.n_annotation_tasks}")
    print(f"photos:          {final.n_photos}")
    print(f"coverage:        {final.coverage_percent:.2f}%")
    print(f"outer bounds:    {final.bounds_percent:.2f}%")
    print()
    print(render_ascii(result.final_maps, bench.ground_truth.region_mask, max_width=90))


if __name__ == "__main__":
    main()
