#!/usr/bin/env python3
"""Featureless-surface reconstruction, step by step (Sec. IV-B).

Walks through the annotation pipeline on one glass pane of the library:
capture the T=4 photo set, collect 15 workers' noisy 4-corner labels,
fuse them with Algorithm 5 (DBSCAN + k-means), imprint a distinctive
texture (Algorithm 6), and re-run SfM so the glass finally shows up in
the obstacles map.

Run:  python examples/featureless_surfaces.py
"""

from repro.annotation import (
    AnnotationCampaign,
    TextureDatabase,
    WorkerPool,
    get_marked_obstacle_bounds,
    reconstruct_featureless_surfaces,
)
from repro.camera import GALAXY_S7
from repro.core import TaskFactory
from repro.eval import Workbench
from repro.eval.metrics import featureless_surface_metrics
from repro.geometry import Vec2
from repro.simkit import RngStream


def main() -> None:
    bench = Workbench.for_library()
    pipeline = bench.make_pipeline()

    # Give the model some context around the west glass wall so the
    # annotation photo set can register.
    print("building context model near the west glass wall...")
    for center in [(3, 3), (3, 6), (3.5, 9)]:
        pipeline.process_batch(
            list(bench.capture.sweep(Vec2(*center), GALAXY_S7, 8.0, blur=0.0))
        )
    model = pipeline.model()
    print(f"  model: {model.n_points} points, {model.n_cameras} cameras")

    glass_ids = {
        s.surface_id for s in bench.venue.featureless_surfaces() if s.material.name == "glass"
    }
    in_cloud = sum(
        1
        for p in model.cloud.points
        if not p.is_artificial
        and not p.is_reflection
        and bench.world.feature(p.feature_id).surface_id in glass_ids
    )
    print(f"  glass points in the cloud before annotation: {in_cloud} (SfM fails on glass)")
    print()

    # 1. The on-site participant photographs the pane.
    campaign = AnnotationCampaign(
        bench.venue, bench.capture, bench.config, RngStream(123, "example-annot")
    )
    location = Vec2(0.5, 7.0)
    surface, photos = campaign.collect_photos(location, GALAXY_S7)
    print(f"step 1 - photo set: {len(photos)} photos of {surface.label}")
    for photo in photos:
        print(f"    photo {photo.photo_id}: {photo.n_features} world features")

    # 2. 15 online workers each mark 4 corners in every photo.
    pool = WorkerPool(bench.venue, bench.config.annotation, RngStream(7, "workers"))
    annotations = pool.annotate_photo_set(photos)
    total = sum(len(v) for v in annotations.values())
    print(f"step 2 - {total} corner annotations collected from "
          f"{bench.config.annotation.workers_per_task} workers")

    # 3. Algorithm 5: cluster annotation centres, fuse corners.
    objects = get_marked_obstacle_bounds(
        [p.photo_id for p in photos], annotations, bench.config.annotation,
        RngStream(8, "fusion"),
    )
    print(f"step 3 - Algorithm 5 identified {len(objects)} distinct object(s)")
    for obj in objects:
        print(f"    object {obj.object_index}: {len(obj.worker_ids)} workers agree, "
              f"fused corners in {obj.n_photos} photos")

    # 4. Algorithm 6: imprint a distinctive texture and re-run SfM.
    result = reconstruct_featureless_surfaces(
        photos, objects, bench.venue.featureless_surfaces(),
        TextureDatabase(), bench.config.annotation, RngStream(9, "imprint"),
    )
    for obj in result.objects:
        print(f"step 4 - texture '{obj.texture.name}' imprinted on "
              f"{bench.venue.surface(obj.surface_id).label}: "
              f"{len(obj.feature_ids)} artificial features in {len(obj.photos_with_texture)} photos")

    pipeline.register_artificial_features(
        result.all_feature_ids(), result.all_feature_positions()
    )
    task = TaskFactory().annotation_task(location, iteration=99)
    context = campaign.collect_context_photos(location, GALAXY_S7)
    outcome = pipeline.process_batch(list(result.photos) + context, task)

    model = pipeline.model()
    artificial = int(model.cloud.artificial_mask.sum())
    print(f"step 5 - SfM re-run: {artificial} artificial glass points now in the model")

    # Score it like Table I.
    from repro.annotation.tool import AnnotationTaskResult

    task_result = AnnotationTaskResult(
        task=task,
        target_surface_id=surface.surface_id,
        photos=tuple(photos),
        n_annotations=total,
        fused_objects=tuple(objects),
        imprint=result,
        outcome=outcome,
    )
    metrics = featureless_surface_metrics(task_result, model, bench.venue, task_number=1)
    print()
    print(f"Table-I style row:  identified={metrics.identified_surfaces} "
          f"reconstructed={metrics.reconstructed_surfaces} "
          f"precision={metrics.precision:.2f} recall={metrics.recall:.2f} "
          f"F={metrics.f_score:.2f}")


if __name__ == "__main__":
    main()
