#!/usr/bin/env python3
"""A distributed SnapTask deployment: backend + concurrent mobile clients.

Runs the full client/server system of Sec. III on a discrete-event
simulation: three phones concurrently request tasks, walk to them with AR
navigation, capture 360° photo sets and stream them over latency- and
bandwidth-limited links to one backend whose SfM processing takes real
(simulated) time. Prints system-level metrics a distributed-systems
reader cares about: makespan, uploaded traffic, per-client workload.

Run:  python examples/distributed_deployment.py
"""

from repro.eval import Workbench
from repro.server import Deployment


def main() -> None:
    bench = Workbench.for_library()
    print(bench.venue.describe())
    print()

    deployment = Deployment(bench, n_clients=3)
    print("running deployment with 3 concurrent mobile clients...")
    report = deployment.run(until_s=40_000.0)

    print()
    print(f"venue covered:        {report.venue_covered}")
    print(f"simulated makespan:   {report.sim_time_s / 60:.1f} minutes")
    print(f"events processed:     {report.events_processed}")
    print(f"tasks completed:      {report.tasks_completed}")
    print(f"photos uploaded:      {report.photos_uploaded}")
    print(f"uplink traffic:       {report.total_traffic_mb / 1024:.2f} GB")
    print()

    print(f"{'client':>10} {'tasks':>6} {'photo':>6} {'annot':>6} {'photos':>7} {'walk s':>8}")
    for client in deployment.clients:
        s = client.stats
        print(
            f"{client.client_id:>10} {s.tasks_completed:>6} {s.photo_tasks:>6} "
            f"{s.annotation_tasks:>6} {s.photos_uploaded:>7} {s.walk_time_s:>8.1f}"
        )

    store = deployment.server.store
    print()
    print(f"backend processed photos: {store.counter('photos_processed')}")
    print(f"map snapshots stored:     {len(store.snapshot_history())}")
    print(f"task ledger:              {store.tasks_by_status()}")
    final = store.latest_maps()
    if final is not None:
        region = bench.ground_truth.region_cells
        covered = int(
            (final.maps.covered_mask() & bench.ground_truth.region_mask).sum()
        )
        print(f"final coverage:           {100.0 * covered / region:.2f}% of the venue")


if __name__ == "__main__":
    main()
